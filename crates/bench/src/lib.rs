//! # elanib-bench — exhibit regeneration harness
//!
//! One binary per paper exhibit (`table1`, `fig1` … `fig8`, `tables`),
//! each printing the same rows/series the paper reports, labelled from
//! [`elanib_core::inventory`]. Set `ELANIB_RESULTS_DIR` to also write
//! each table as CSV for plotting.

pub mod conformance;
pub mod perf_report;
pub mod rotate;

use std::fs;
use std::path::PathBuf;
use std::sync::{LazyLock, Mutex};
use std::time::Instant;

use elanib_core::simcache::{self, CacheStats};
use elanib_core::{exhibit, TextTable};

/// Process-start anchor for the first exhibit's wall-time delta.
/// Forced by [`regen_begin`]; falls back to first-[`emit`] time if a
/// driver forgets to call it (wall then reads ~0 for its first
/// exhibit, never wrong for later ones).
static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);

/// The previous regen mark: when the last exhibit finished and what
/// the cache counters read at that point. Deltas between consecutive
/// [`emit`] calls attribute wall time and cache traffic per exhibit.
struct Mark {
    at: Instant,
    cache: CacheStats,
}
static LAST_MARK: Mutex<Option<Mark>> = Mutex::new(None);

/// Called first thing in every exhibit driver's `main`: pins the
/// wall-clock epoch so the first exhibit's `{"kind":"regen"}` record
/// covers its simulation time, not just the `emit` call.
pub fn regen_begin() {
    let _ = *EPOCH;
}

/// Per-exhibit regeneration record: wall time since the previous
/// exhibit (or [`regen_begin`]) and the point-cache traffic deltas.
///
/// Reported three ways, none touching stdout (which must stay
/// byte-stable):
/// * a stderr `[regen …]` line (`regen_all.sh` surfaces these);
/// * a `{"kind":"regen"}` JSON line appended to `ELANIB_BENCH_JSON`
///   (the `BENCH_regen.json` methodology record — see EXPERIMENTS.md);
/// * `cache.hits/misses/stores` counters submitted through the
///   trace/metrics registry when metrics are enabled, so the deltas
///   land in the exhibit's `<name>.metrics.{json,csv}` next to the
///   simulation counters.
fn record_regen(name: &str) {
    let now = Instant::now();
    let cache_now = simcache::stats();
    let (wall, delta) = {
        let mut last = LAST_MARK.lock().unwrap();
        let (wall, delta) = match last.take() {
            Some(m) => (now - m.at, cache_now.delta_since(m.cache)),
            None => (now - *EPOCH, cache_now),
        };
        *last = Some(Mark {
            at: now,
            cache: cache_now,
        });
        (wall, delta)
    };
    let mode = match simcache::mode() {
        simcache::Mode::Off => "off",
        simcache::Mode::Memo => "memo",
        simcache::Mode::Disk(_) => "disk",
    };
    eprintln!(
        "[regen {name}: {:.2} s wall, cache {} hits / {} misses / {} corrupt ({:.0}% hit rate, mode {mode})]",
        wall.as_secs_f64(),
        delta.hits,
        delta.misses,
        delta.corrupt,
        delta.hit_rate() * 100.0,
    );
    if let Ok(path) = std::env::var("ELANIB_BENCH_JSON") {
        if !path.is_empty() {
            let ts = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            let git_rev = elanib_simcore::trace::git_rev();
            let line = format!(
                "{{\"kind\":\"regen\",\"schema\":3,\"git_rev\":\"{git_rev}\",\"exhibit\":\"{}\",\"wall_s\":{:.6},\"cache_mode\":\"{mode}\",\"cache_hits\":{},\"cache_misses\":{},\"cache_stores\":{},\"cache_corrupt\":{},\"hit_rate\":{:.4},\"unix_ts\":{ts}}}",
                name.replace('\\', "\\\\").replace('"', "\\\""),
                wall.as_secs_f64(),
                delta.hits,
                delta.misses,
                delta.stores,
                delta.corrupt,
                delta.hit_rate(),
            );
            let _ = elanib_simcore::trace::jsonl::append_line(std::path::Path::new(&path), &line);
        }
    }
    if delta.hits + delta.misses > 0 {
        if let Some(tr) = elanib_simcore::trace::Tracer::from_config(0) {
            if tr.metrics_on() {
                tr.set_label(format!("{name}.simcache"));
                tr.add("cache.hits", delta.hits);
                tr.add("cache.misses", delta.misses);
                tr.add("cache.stores", delta.stores);
                if delta.corrupt > 0 {
                    tr.add("cache.corrupt", delta.corrupt);
                }
            }
        }
    }
}

/// Print an exhibit header, render the table, and (optionally) write
/// CSV into `$ELANIB_RESULTS_DIR/<name>.csv`.
///
/// When tracing or metrics are enabled (`ELANIB_TRACE` /
/// `ELANIB_METRICS`), this is also the sink point: every simulation
/// that finished since the previous `emit` is flushed to
/// `<name>.trace.json` / `<name>.metrics.{json,csv}` in the trace
/// output directory (`ELANIB_TRACE_DIR`, falling back to
/// `ELANIB_RESULTS_DIR`, then the working directory). Flush notices go
/// to stderr so stdout stays byte-stable run to run.
///
/// Each call also records a regeneration report for the table: wall
/// time since the previous `emit` (or `regen_begin`) and the point
/// cache's hit/miss/store delta over the same window — one
/// `[regen <name>: ...]` stderr line, plus a `{"kind":"regen",...}`
/// JSON record when `ELANIB_BENCH_JSON` is set.
pub fn emit(exhibit_id: &str, name: &str, table: &TextTable) {
    if let Some(e) = exhibit(exhibit_id) {
        println!("== {} — {} ==", e.id, e.title);
        println!("   workload: {}", e.workload);
        println!("   modules:  {}", e.modules);
    } else {
        println!("== {exhibit_id} ==");
    }
    println!();
    println!("{}", table.render());
    if let Ok(dir) = std::env::var("ELANIB_RESULTS_DIR") {
        let mut p = PathBuf::from(dir);
        let _ = fs::create_dir_all(&p);
        p.push(format!("{name}.csv"));
        if let Err(e) = fs::write(&p, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", p.display());
        } else {
            println!("[csv written to {}]", p.display());
        }
    }
    record_regen(name);
    if let Some(files) = elanib_simcore::trace::flush(name) {
        if let Some(p) = &files.trace_json {
            eprintln!("[trace written to {}]", p.display());
        }
        if let Some(p) = &files.metrics_json {
            eprintln!("[metrics written to {}]", p.display());
        }
    }
    if let Some(files) = elanib_simcore::profile::flush(name) {
        if let Some(p) = &files.profile_json {
            eprintln!("[profile written to {}]", p.display());
        }
    }
}

/// The node counts of the paper's application studies.
pub const STUDY_NODES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Report a sweep's throughput on stderr (keeping stdout — the
/// captured exhibit output — byte-stable run to run) and append the
/// `{"kind":"sweep"}` JSON record when `ELANIB_BENCH_JSON` is set.
pub fn report_sweep(label: &str, stats: &elanib_core::SweepStats) {
    eprintln!(
        "[sweep {label}: {} jobs on {} threads, {:.2} s wall, {:.1}M events/s]",
        stats.jobs,
        stats.threads,
        stats.wall.as_secs_f64(),
        stats.events_per_sec() / 1e6,
    );
    stats.record(label);
}

/// Build the Figure 2/3 table: the four-curve MD scaled study
/// (network × PPN), times and efficiencies.
///
/// All `4 series × node counts` jobs are independent simulations, so
/// they are flattened into ONE sweep (rather than one per series) to
/// give the engine the widest possible grid; the per-series efficiency
/// normalization is folded serially afterwards. Split from
/// [`md_figure`] so the determinism regression test can rebuild the
/// table under different `ELANIB_SWEEP_THREADS` settings and compare
/// CSVs.
pub fn md_figure_table(
    problem: elanib_apps::md::MdProblem,
    node_counts: &[usize],
) -> (TextTable, elanib_core::SweepStats) {
    use elanib_apps::md::md_step_time;
    use elanib_core::f;
    use elanib_mpi::Network;
    const SERIES: [(Network, usize); 4] = [
        (Network::InfiniBand, 1),
        (Network::InfiniBand, 2),
        (Network::Elan4, 1),
        (Network::Elan4, 2),
    ];
    let jobs: Vec<(Network, usize, usize)> = SERIES
        .iter()
        .flat_map(|&(net, ppn)| node_counts.iter().map(move |&n| (net, ppn, n)))
        .collect();
    // Cost hints for guided placement: an MD point's event count grows
    // with its rank count (nodes × ppn), so the big end of the grid is
    // scheduled first / packed evenly instead of round-robin'd.
    let hints: Vec<u64> = jobs
        .iter()
        .map(|&(_, ppn, nodes)| (nodes * ppn) as u64)
        .collect();
    let (times, stats) =
        elanib_core::sweep_guided_with_stats(&jobs, &hints, |&(net, ppn, nodes)| {
            md_step_time(net, problem, nodes, ppn)
        });
    // series[s][i] = (s/step, efficiency) at node_counts[i].
    let series: Vec<Vec<(f64, f64)>> = (0..SERIES.len())
        .map(|s| {
            let ts = &times[s * node_counts.len()..(s + 1) * node_counts.len()];
            let base = ts[0];
            ts.iter().map(|&t| (t, base / t)).collect()
        })
        .collect();
    let mut t = TextTable::new(vec![
        "nodes",
        "IB 1PPN s/step",
        "IB 2PPN s/step",
        "Elan 1PPN s/step",
        "Elan 2PPN s/step",
        "IB 1PPN eff%",
        "IB 2PPN eff%",
        "Elan 1PPN eff%",
        "Elan 2PPN eff%",
    ]);
    for (i, &nodes) in node_counts.iter().enumerate() {
        t.row(vec![
            nodes.to_string(),
            f(series[0][i].0),
            f(series[1][i].0),
            f(series[2][i].0),
            f(series[3][i].0),
            f(series[0][i].1 * 100.0),
            f(series[1][i].1 * 100.0),
            f(series[2][i].1 * 100.0),
            f(series[3][i].1 * 100.0),
        ]);
    }
    (t, stats)
}

/// Shared generator for Figures 2 and 3: emit the four-curve MD scaled
/// study and report the sweep's throughput.
pub fn md_figure(id: &str, name: &str, problem: elanib_apps::md::MdProblem) {
    let (t, stats) = md_figure_table(problem, &STUDY_NODES);
    emit(id, name, &t);
    report_sweep(name, &stats);
}

/// Build the Figure 6 table: NAS CG class A MOps/s/process and scaling
/// efficiency on both networks. Both per-network studies are sweeps;
/// their stats are merged into one record. Split from the `fig6`
/// binary so the determinism regression tests can rebuild the table
/// under different scheduling modes (`ELANIB_SWEEP_THREADS`,
/// `ELANIB_DES_SHARDS`) and compare CSVs byte-for-byte.
pub fn cg_figure_table(
    problem: elanib_apps::nascg::CgProblem,
    proc_counts: &[usize],
    ppn: usize,
) -> (TextTable, elanib_core::SweepStats) {
    use elanib_apps::nascg::cg_study_with_stats;
    use elanib_core::f;
    use elanib_mpi::Network;
    let (ib, mut stats) = cg_study_with_stats(Network::InfiniBand, problem, proc_counts, ppn);
    let (el, el_stats) = cg_study_with_stats(Network::Elan4, problem, proc_counts, ppn);
    stats.absorb(&el_stats);
    let mut t = TextTable::new(vec![
        "procs",
        "IB MOps/s/proc",
        "Elan MOps/s/proc",
        "IB eff%",
        "Elan eff%",
    ]);
    for (i, &procs) in proc_counts.iter().enumerate() {
        t.row(vec![
            procs.to_string(),
            f(ib[i].1),
            f(el[i].1),
            f(ib[i].0.efficiency_pct()),
            f(el[i].0.efficiency_pct()),
        ]);
    }
    (t, stats)
}

/// Loss rates of the fault-injection latency study. Index 0 is the
/// clean baseline (an effectless plan, byte-identical to no plan).
pub const FAULT_RATES: [f64; 4] = [0.0, 1e-3, 1e-2, 3e-2];

/// Message sizes of the fault-injection latency study.
pub const FAULT_SIZES: [u64; 3] = [64, 4096, 65_536];

fn fault_cell(p: &elanib_microbench::FaultPoint) -> String {
    use elanib_core::f;
    if p.failed {
        "QP-ERR".to_string()
    } else {
        f(p.latency_us)
    }
}

fn fault_slowdown(
    p: &elanib_microbench::FaultPoint,
    base: &elanib_microbench::FaultPoint,
) -> String {
    use elanib_core::f;
    if p.failed || base.latency_us <= 0.0 {
        "-".to_string()
    } else {
        f(p.latency_us / base.latency_us)
    }
}

/// The fault-rate × message-size latency grid: ping-pong on both
/// networks under seeded per-packet loss. Shows Elan's link-level
/// retry degrading latency by microseconds while IB's end-to-end ACK
/// timeout cliffs it by orders of magnitude — and, at the most
/// aggressive rate, kills the QP outright (`QP-ERR` cells).
///
/// The whole `rate × size × network` grid is ONE flattened sweep;
/// rates enter as indices into a prebuilt plan table so the sweep
/// items stay integer-valued (`f64` grid values would leak formatting
/// into the cache keys).
pub fn faults_latency_table() -> (TextTable, elanib_core::SweepStats) {
    use elanib_core::f;
    use elanib_fabric::FaultPlan;
    use elanib_microbench::fault_pingpong;
    use elanib_mpi::Network;
    use std::sync::Arc;

    let iters = 30u32;
    let plans: Vec<Arc<FaultPlan>> = FAULT_RATES
        .iter()
        .map(|&r| Arc::new(FaultPlan::parse(&format!("loss={r},seed=11")).unwrap()))
        .collect();
    let jobs: Vec<(Network, usize, u64)> = Network::BOTH
        .iter()
        .flat_map(|&net| {
            (0..FAULT_RATES.len())
                .flat_map(move |ri| FAULT_SIZES.iter().map(move |&b| (net, ri, b)))
        })
        .collect();
    let plans_ref = &plans;
    // Guided placement hint: segment count dominates a point's event
    // cost, so the payload size is a faithful analytic proxy.
    let hints: Vec<u64> = jobs.iter().map(|&(_, _, b)| b).collect();
    let (points, stats) =
        elanib_core::sweep_guided_with_stats(&jobs, &hints, |&(net, ri, bytes)| {
            fault_pingpong(net, bytes, iters, &plans_ref[ri])
        });
    // points[net_idx * rates*sizes + ri * sizes + si]
    let idx = |net: usize, ri: usize, si: usize| {
        net * FAULT_RATES.len() * FAULT_SIZES.len() + ri * FAULT_SIZES.len() + si
    };
    let mut t = TextTable::new(vec![
        "bytes",
        "loss rate",
        "IB us",
        "Elan us",
        "IB slowdown",
        "Elan slowdown",
        "IB retransmits",
        "Elan link retries",
    ]);
    for (ri, &rate) in FAULT_RATES.iter().enumerate() {
        for (si, &bytes) in FAULT_SIZES.iter().enumerate() {
            let ib = &points[idx(0, ri, si)];
            let el = &points[idx(1, ri, si)];
            let (ib0, el0) = (&points[idx(0, 0, si)], &points[idx(1, 0, si)]);
            t.row(vec![
                bytes.to_string(),
                f(rate),
                fault_cell(ib),
                fault_cell(el),
                fault_slowdown(ib, ib0),
                fault_slowdown(el, el0),
                ib.retries.to_string(),
                el.retries.to_string(),
            ]);
        }
    }
    (t, stats)
}

/// The link-outage recovery study: stream 100 × 64 KiB across the full
/// diameter of a 16-node fabric while a link on the clean static route
/// goes down for 1 ms / 3 ms. Elan's adaptive routing detours around
/// the outage (reroutes > 0, near-clean time); InfiniBand's static
/// route stalls on timeout-paced whole-message retransmits.
pub fn faults_outage_table() -> (TextTable, elanib_core::SweepStats) {
    use elanib_core::f;
    use elanib_fabric::{elan_fabric, ib_fabric, FaultPlan};
    use elanib_microbench::outage_stream;
    use elanib_mpi::Network;
    use std::sync::Arc;

    let (msgs, bytes) = (100u32, 65_536u64);
    const OUTAGE_US: [u64; 3] = [0, 1_000, 3_000]; // 0 = clean baseline
                                                   // Fault the first switch-side link on each network's own clean
                                                   // 0 -> 15 route, so the outage provably intersects the static path.
    let probe_edge = |net: Network| -> usize {
        let fabric = match net {
            Network::InfiniBand => ib_fabric(16),
            Network::Elan4 => elan_fabric(16),
            Network::RoceV2(_) => elanib_fabric::roce_fabric(16),
        };
        fabric.routes().path(0, 15)[1]
    };
    let plans: Vec<Arc<FaultPlan>> = Network::BOTH
        .iter()
        .flat_map(|&net| {
            let edge = probe_edge(net);
            OUTAGE_US.iter().map(move |&us| {
                // Start at 2 ms: past InfiniBand's per-peer QP setup
                // (~2.25 ms at 16 nodes), so the window intersects the
                // data phase of both networks' streams.
                let spec = if us == 0 {
                    "loss=0,seed=11".to_string()
                } else {
                    format!("outage=link{edge}@2ms+{us}us,seed=11")
                };
                Arc::new(FaultPlan::parse(&spec).unwrap())
            })
        })
        .collect();
    let jobs: Vec<(Network, usize)> = Network::BOTH
        .iter()
        .flat_map(|&net| (0..OUTAGE_US.len()).map(move |oi| (net, oi)))
        .collect();
    let plans_ref = &plans;
    let (points, stats) = elanib_core::sweep_with_stats(&jobs, |&(net, oi)| {
        let pi = match net {
            Network::InfiniBand => oi,
            Network::Elan4 => OUTAGE_US.len() + oi,
            Network::RoceV2(_) => unreachable!("outage sweep iterates Network::BOTH"),
        };
        outage_stream(net, msgs, bytes, &plans_ref[pi])
    });
    let idx = |net: usize, oi: usize| net * OUTAGE_US.len() + oi;
    let mut t = TextTable::new(vec![
        "network",
        "outage ms",
        "stream time us",
        "slowdown",
        "reroutes",
        "outage waits",
        "retries",
    ]);
    for (ni, net) in Network::BOTH.iter().enumerate() {
        let base = &points[idx(ni, 0)];
        for (oi, &us) in OUTAGE_US.iter().enumerate() {
            let p = &points[idx(ni, oi)];
            t.row(vec![
                net.label().to_string(),
                f(us as f64 / 1e3),
                fault_cell(p),
                fault_slowdown(p, base),
                p.reroutes.to_string(),
                p.outage_waits.to_string(),
                p.retries.to_string(),
            ]);
        }
    }
    (t, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elanib_core::f;

    #[test]
    fn emit_writes_csv_when_requested() {
        let dir = std::env::temp_dir().join("elanib-bench-test");
        std::env::set_var("ELANIB_RESULTS_DIR", &dir);
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec![f(1.0), f(2.0)]);
        emit("Figure 7", "unit_test_table", &t);
        let csv = std::fs::read_to_string(dir.join("unit_test_table.csv")).unwrap();
        assert!(csv.starts_with("a,b"));
        std::env::remove_var("ELANIB_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
