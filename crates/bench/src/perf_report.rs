//! Driver behind the `elanib-report` binary: merge BENCH history,
//! profiler output and `conformance.json` into one perf dashboard.
//!
//! Inputs are the flat JSONL records the rest of the repo already
//! emits to `ELANIB_BENCH_JSON` — `{"kind":"regen"}` per-exhibit wall
//! times, `{"kind":"sweep"}` throughput records (with the schema-3
//! per-worker breakdown), `{"kind":"profile"}` kernel-profiler
//! flushes — plus the conformance run's JSON verdict. Output is a
//! markdown dashboard (`perf_report.md`) and a structured JSON twin
//! (`perf_report.json`), both deterministic functions of the input
//! files: records are processed in file order, line order, and every
//! table is sorted by explicit keys, so re-running the report on the
//! same inputs is byte-identical.
//!
//! The report also extends the warn-only regression gate from wall
//! time to **per-event-type cost**: for each exhibit with profile
//! history, the latest `ns/event` of every kernel bucket is compared
//! against the best historical value; a bucket that got more than
//! `ratio` times slower is flagged (warning by default, failure with
//! `--strict`) — the same generous-threshold policy as the bench gate,
//! but attributed to a named kernel bucket instead of a whole run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::conformance::{json_num_field, json_str_field};

/// Kernel buckets a profile record reports, in record order.
const BUCKETS: [&str; 4] = ["poll", "timer", "call", "wake"];

/// Buckets with fewer events than this are not cost-gated: per-event
/// cost over a handful of dispatches is process noise. Shared with the
/// BENCH rotation so it preserves exactly the records this gate
/// considers "best".
pub(crate) const GATE_MIN_EVENTS: f64 = 10_000.0;

/// One `{"kind":"sweep"}` or `{"kind":"regen"}` record.
#[derive(Clone, Debug, Default)]
struct WallRecord {
    label: String,
    wall_s: f64,
    events_per_sec: Option<f64>,
    shards: Option<f64>,
    threads: Option<f64>,
    jobs: Option<f64>,
    /// Per-worker `(jobs, events, busy_s)` from the schema-3 breakdown.
    workers: Vec<(f64, f64, f64)>,
}

/// One `{"kind":"profile"}` record.
#[derive(Clone, Debug, Default)]
struct ProfileRecord {
    exhibit: String,
    sims: f64,
    events: f64,
    run_wall_ns: f64,
    attribution_pct: f64,
    /// `(count, wall_ns)` per bucket, indexed like [`BUCKETS`].
    buckets: [(f64, f64); 4],
    barrier_rounds: f64,
    barrier_stall_ns: f64,
}

impl ProfileRecord {
    fn ns_per_event(&self, b: usize) -> Option<f64> {
        let (count, wall) = self.buckets[b];
        (count > 0.0).then(|| wall / count)
    }
}

/// Everything parsed out of the input files.
#[derive(Debug, Default)]
struct History {
    /// Records in input order, keyed for "latest" = last occurrence.
    regen: Vec<WallRecord>,
    sweeps: Vec<WallRecord>,
    profiles: Vec<ProfileRecord>,
    inputs: Vec<String>,
    git_revs: Vec<String>,
}

/// The generated report.
#[derive(Debug, Default)]
pub struct PerfReport {
    pub markdown: String,
    pub json: String,
    /// Per-event-type cost regressions (warn-only unless strict).
    pub flags: Vec<String>,
}

/// Extract the bodies of the objects in a `"key":[{...},{...}]` array
/// (flat objects only — exactly what the sweep record emits).
fn json_obj_array(line: &str, key: &str) -> Vec<String> {
    let pat = format!("\"{key}\":[");
    let Some(start) = line.find(&pat) else {
        return Vec::new();
    };
    let rest = &line[start + pat.len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .split('{')
        .filter(|s| !s.is_empty())
        .map(|s| format!("{{{}", s.trim_end_matches(',')))
        .collect()
}

fn parse_line(line: &str, h: &mut History) {
    let Some(kind) = json_str_field(line, "kind") else {
        return;
    };
    if let Some(rev) = json_str_field(line, "git_rev") {
        if !rev.is_empty() && !h.git_revs.contains(&rev) {
            h.git_revs.push(rev);
        }
    }
    match kind.as_str() {
        "regen" | "sweep" => {
            let Some(label) =
                json_str_field(line, "exhibit").or_else(|| json_str_field(line, "label"))
            else {
                return;
            };
            let Some(wall_s) = json_num_field(line, "wall_s") else {
                return;
            };
            let rec = WallRecord {
                label,
                wall_s,
                events_per_sec: json_num_field(line, "events_per_sec"),
                shards: json_num_field(line, "shards"),
                threads: json_num_field(line, "threads"),
                jobs: json_num_field(line, "jobs"),
                workers: json_obj_array(line, "workers")
                    .iter()
                    .map(|w| {
                        (
                            json_num_field(w, "j").unwrap_or(0.0),
                            json_num_field(w, "e").unwrap_or(0.0),
                            json_num_field(w, "busy_s").unwrap_or(0.0),
                        )
                    })
                    .collect(),
            };
            if kind == "regen" {
                h.regen.push(rec);
            } else {
                h.sweeps.push(rec);
            }
        }
        "profile" => {
            let Some(exhibit) = json_str_field(line, "exhibit") else {
                return;
            };
            let mut rec = ProfileRecord {
                exhibit,
                sims: json_num_field(line, "sims").unwrap_or(0.0),
                events: json_num_field(line, "events").unwrap_or(0.0),
                run_wall_ns: json_num_field(line, "run_wall_ns").unwrap_or(0.0),
                attribution_pct: json_num_field(line, "attribution_pct").unwrap_or(0.0),
                barrier_rounds: json_num_field(line, "barrier_rounds").unwrap_or(0.0),
                barrier_stall_ns: json_num_field(line, "barrier_stall_ns").unwrap_or(0.0),
                ..ProfileRecord::default()
            };
            for (i, b) in BUCKETS.iter().enumerate() {
                rec.buckets[i] = (
                    json_num_field(line, &format!("{b}_count")).unwrap_or(0.0),
                    json_num_field(line, &format!("{b}_wall_ns")).unwrap_or(0.0),
                );
            }
            h.profiles.push(rec);
        }
        _ => {}
    }
}

fn load(inputs: &[PathBuf]) -> Result<History, String> {
    let mut h = History::default();
    for path in inputs {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("report: cannot read {}: {e}", path.display()))?;
        h.inputs.push(
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string()),
        );
        for line in text.lines() {
            let line = line.trim();
            if !line.is_empty() {
                parse_line(line, &mut h);
            }
        }
    }
    Ok(h)
}

/// Conformance summary pulled out of `conformance.json`.
#[derive(Debug, Default)]
struct ConformanceSummary {
    present: bool,
    ok: bool,
    bench_flags: usize,
}

fn load_conformance(path: &Path) -> Result<ConformanceSummary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("report: cannot read {}: {e}", path.display()))?;
    let flat = text.replace(char::is_whitespace, "");
    Ok(ConformanceSummary {
        present: true,
        ok: flat.contains("\"ok\":true"),
        bench_flags: flat
            .find("\"bench_flags\":[")
            .map(|i| {
                let rest = &flat[i + "\"bench_flags\":[".len()..];
                let body = &rest[..rest.find(']').unwrap_or(0)];
                if body.is_empty() {
                    0
                } else {
                    body.matches('"').count() / 2
                }
            })
            .unwrap_or(0),
    })
}

fn fmt_eps(eps: f64) -> String {
    format!("{:.2}M", eps / 1e6)
}

/// Latest-vs-best trend tables keyed by label: `(best, latest, n)`.
fn trend<'a>(
    recs: impl Iterator<Item = &'a WallRecord>,
    value: impl Fn(&WallRecord) -> Option<f64>,
    best_is_max: bool,
) -> BTreeMap<String, (f64, f64, usize)> {
    let mut out: BTreeMap<String, (f64, f64, usize)> = BTreeMap::new();
    for r in recs {
        let Some(v) = value(r) else { continue };
        let e = out.entry(r.label.clone()).or_insert((v, v, 0));
        if (best_is_max && v > e.0) || (!best_is_max && v < e.0) {
            e.0 = v;
        }
        e.1 = v; // input order: last record wins "latest"
        e.2 += 1;
    }
    out
}

/// Per-event-type cost gate: latest ns/event per (exhibit, bucket) vs
/// the best (minimum) historical ns/event over the earlier records.
fn cost_flags(profiles: &[ProfileRecord], ratio: f64) -> Vec<String> {
    let mut flags = Vec::new();
    let mut by_exhibit: BTreeMap<&str, Vec<&ProfileRecord>> = BTreeMap::new();
    for p in profiles {
        by_exhibit.entry(p.exhibit.as_str()).or_default().push(p);
    }
    for (exhibit, recs) in by_exhibit {
        let (latest, history) = match recs.split_last() {
            Some((l, h)) if !h.is_empty() => (l, h),
            _ => continue, // nothing to compare against
        };
        for (b, name) in BUCKETS.iter().enumerate() {
            let Some(now) = latest.ns_per_event(b) else {
                continue;
            };
            if latest.buckets[b].0 < GATE_MIN_EVENTS {
                continue;
            }
            let best = history
                .iter()
                .filter(|p| p.buckets[b].0 >= GATE_MIN_EVENTS)
                .filter_map(|p| p.ns_per_event(b))
                .fold(f64::INFINITY, f64::min);
            if best.is_finite() && now > best * ratio {
                flags.push(format!(
                    "{exhibit}/{name}: {now:.1} ns/event vs best {best:.1} ({:.1}x > allowed {ratio}x)",
                    now / best
                ));
            }
        }
    }
    flags
}

/// Generate the dashboard from `inputs` (JSONL files, in order) and an
/// optional `conformance.json`. Pure function of the file contents.
pub fn generate(
    inputs: &[PathBuf],
    conformance: Option<&Path>,
    ratio: f64,
) -> Result<PerfReport, String> {
    let h = load(inputs)?;
    let conf = match conformance {
        Some(p) => load_conformance(p)?,
        None => ConformanceSummary::default(),
    };
    let flags = cost_flags(&h.profiles, ratio);

    let eps_trend = trend(h.sweeps.iter(), |r| r.events_per_sec, true);
    let wall_trend = trend(h.regen.iter(), |r| Some(r.wall_s), false);

    // Latest profile per exhibit, plus a cross-exhibit bucket rollup.
    let mut latest_prof: BTreeMap<&str, &ProfileRecord> = BTreeMap::new();
    for p in &h.profiles {
        latest_prof.insert(p.exhibit.as_str(), p);
    }
    let mut rollup = [(0.0f64, 0.0f64); 4];
    let (mut roll_run_ns, mut roll_stall_ns) = (0.0f64, 0.0f64);
    for p in latest_prof.values() {
        for (r, b) in rollup.iter_mut().zip(p.buckets.iter()) {
            r.0 += b.0;
            r.1 += b.1;
        }
        roll_run_ns += p.run_wall_ns;
        roll_stall_ns += p.barrier_stall_ns;
    }

    // ---- markdown ----
    let mut md = String::from("# elanib perf report\n\n");
    md.push_str(&format!("Inputs: {}\n", h.inputs.join(", ")));
    if !h.git_revs.is_empty() {
        md.push_str(&format!("Git revisions seen: {}\n", h.git_revs.join(", ")));
    }
    md.push('\n');

    md.push_str("## Sweep throughput (events/s per label)\n\n");
    if eps_trend.is_empty() {
        md.push_str("No sweep records.\n\n");
    } else {
        md.push_str("| label | records | best | latest | latest/best |\n");
        md.push_str("|---|---:|---:|---:|---:|\n");
        for (label, (best, latest, n)) in &eps_trend {
            md.push_str(&format!(
                "| {label} | {n} | {} | {} | {:.2} |\n",
                fmt_eps(*best),
                fmt_eps(*latest),
                latest / best
            ));
        }
        md.push('\n');
    }

    md.push_str("## Regen wall time (s per exhibit)\n\n");
    if wall_trend.is_empty() {
        md.push_str("No regen records.\n\n");
    } else {
        md.push_str("| exhibit | records | best | latest | latest/best |\n");
        md.push_str("|---|---:|---:|---:|---:|\n");
        for (label, (best, latest, n)) in &wall_trend {
            md.push_str(&format!(
                "| {label} | {n} | {best:.3} | {latest:.3} | {:.2} |\n",
                latest / best.max(1e-9)
            ));
        }
        md.push('\n');
    }

    md.push_str("## Hot kernel events (latest profile per exhibit, rolled up)\n\n");
    if latest_prof.is_empty() {
        md.push_str("No profile records (run with ELANIB_PROFILE=1 to collect).\n\n");
    } else {
        let total_attr: f64 = rollup.iter().map(|&(_, w)| w).sum::<f64>() + roll_stall_ns;
        let total_measured = roll_run_ns + roll_stall_ns;
        let pct = if total_measured > 0.0 {
            100.0 * total_attr / total_measured
        } else {
            100.0
        };
        md.push_str("| bucket | events | wall ms | ns/event | share of attributed |\n");
        md.push_str("|---|---:|---:|---:|---:|\n");
        let mut order: Vec<usize> = (0..BUCKETS.len()).collect();
        order.sort_by(|&a, &b| rollup[b].1.total_cmp(&rollup[a].1));
        for b in order {
            let (count, wall) = rollup[b];
            let npe = if count > 0.0 { wall / count } else { 0.0 };
            md.push_str(&format!(
                "| {} | {:.0} | {:.2} | {npe:.1} | {:.1}% |\n",
                BUCKETS[b],
                count,
                wall / 1e6,
                if total_attr > 0.0 {
                    100.0 * wall / total_attr
                } else {
                    0.0
                }
            ));
        }
        md.push_str(&format!(
            "| barrier | {:.0} rounds | {:.2} | — | {:.1}% |\n\n",
            h.profiles.iter().map(|p| p.barrier_rounds).sum::<f64>(),
            roll_stall_ns / 1e6,
            if total_attr > 0.0 {
                100.0 * roll_stall_ns / total_attr
            } else {
                0.0
            }
        ));
        md.push_str(&format!(
            "Attribution: **{pct:.1}%** of measured kernel wall time is in named buckets.\n\n"
        ));
        md.push_str("Per exhibit:\n\n");
        md.push_str("| exhibit | sims | events | run wall ms | attribution |\n");
        md.push_str("|---|---:|---:|---:|---:|\n");
        for (exhibit, p) in &latest_prof {
            md.push_str(&format!(
                "| {exhibit} | {:.0} | {:.0} | {:.2} | {:.1}% |\n",
                p.sims,
                p.events,
                p.run_wall_ns / 1e6,
                p.attribution_pct
            ));
        }
        md.push('\n');
    }

    md.push_str("## Shard / worker efficiency\n\n");
    let sharded: Vec<&WallRecord> = h
        .sweeps
        .iter()
        .filter(|r| !r.workers.is_empty() || r.shards.is_some())
        .collect();
    if sharded.is_empty() {
        md.push_str("No sweep records with worker breakdowns (schema 3).\n\n");
    } else {
        md.push_str("| label | threads | shards | jobs | events/s | worker balance |\n");
        md.push_str("|---|---:|---:|---:|---:|---:|\n");
        for r in sharded {
            let balance = if r.workers.len() > 1 {
                let evs: Vec<f64> = r.workers.iter().map(|&(_, e, _)| e).collect();
                let max = evs.iter().cloned().fold(0.0f64, f64::max);
                let mean = evs.iter().sum::<f64>() / evs.len() as f64;
                if mean > 0.0 {
                    format!("{:.2} max/mean", max / mean)
                } else {
                    "—".to_string()
                }
            } else {
                "—".to_string()
            };
            md.push_str(&format!(
                "| {} | {} | {} | {} | {} | {balance} |\n",
                r.label,
                r.threads.map_or("—".into(), |t| format!("{t:.0}")),
                r.shards.map_or("—".into(), |s| format!("{s:.0}")),
                r.jobs.map_or("—".into(), |j| format!("{j:.0}")),
                r.events_per_sec.map_or("—".into(), fmt_eps),
            ));
        }
        md.push('\n');
    }

    md.push_str("## Per-event-type cost gate\n\n");
    if flags.is_empty() {
        md.push_str(&format!(
            "Clean: no kernel bucket got more than {ratio}x slower than its best historical ns/event.\n\n"
        ));
    } else {
        for f in &flags {
            md.push_str(&format!("- WARN {f}\n"));
        }
        md.push('\n');
    }

    md.push_str("## Conformance\n\n");
    if conf.present {
        md.push_str(&format!(
            "conformance.json: **{}**, {} bench flag(s).\n",
            if conf.ok { "ok" } else { "FAILING" },
            conf.bench_flags
        ));
    } else {
        md.push_str("No conformance.json supplied.\n");
    }

    // ---- json twin ----
    let mut js = String::from("{\n");
    js.push_str(&format!(
        "  \"inputs\": [{}],\n",
        h.inputs
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    js.push_str("  \"sweep_eps\": {");
    js.push_str(
        &eps_trend
            .iter()
            .map(|(l, (b, latest, n))| {
                format!("\"{l}\": {{\"best\": {b:.1}, \"latest\": {latest:.1}, \"records\": {n}}}")
            })
            .collect::<Vec<_>>()
            .join(", "),
    );
    js.push_str("},\n  \"regen_wall_s\": {");
    js.push_str(
        &wall_trend
            .iter()
            .map(|(l, (b, latest, n))| {
                format!("\"{l}\": {{\"best\": {b:.6}, \"latest\": {latest:.6}, \"records\": {n}}}")
            })
            .collect::<Vec<_>>()
            .join(", "),
    );
    js.push_str("},\n  \"profiles\": {");
    js.push_str(
        &latest_prof
            .iter()
            .map(|(e, p)| {
                let buckets = BUCKETS
                    .iter()
                    .enumerate()
                    .map(|(b, name)| {
                        format!(
                            "\"{name}\": {{\"count\": {:.0}, \"wall_ns\": {:.0}}}",
                            p.buckets[b].0, p.buckets[b].1
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "\"{e}\": {{\"events\": {:.0}, \"run_wall_ns\": {:.0}, \"attribution_pct\": {:.2}, \"barrier_stall_ns\": {:.0}, {buckets}}}",
                    p.events, p.run_wall_ns, p.attribution_pct, p.barrier_stall_ns
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
    );
    js.push_str("},\n");
    js.push_str(&format!(
        "  \"cost_flags\": [{}],\n",
        flags
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "\\\"")))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    js.push_str(&format!(
        "  \"conformance\": {{\"present\": {}, \"ok\": {}, \"bench_flags\": {}}}\n}}\n",
        conf.present, conf.ok, conf.bench_flags
    ));

    Ok(PerfReport {
        markdown: md,
        json: js,
        flags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, name: &str, body: &str) -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, body).unwrap();
        p
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("elanib_report_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    const SWEEP_A: &str = "{\"kind\":\"sweep\",\"schema\":3,\"git_rev\":\"abc123\",\"label\":\"fig2_ljs\",\"jobs\":24,\"threads\":4,\"shards\":null,\"payload_mode\":\"tagged\",\"events\":1000000,\"failed\":0,\"wall_s\":0.5,\"events_per_sec\":2000000.0,\"unix_ts\":1,\"workers\":[{\"w\":0,\"j\":12,\"e\":600000,\"busy_s\":0.4},{\"w\":1,\"j\":12,\"e\":400000,\"busy_s\":0.3}]}";
    const PROF_1: &str = "{\"kind\":\"profile\",\"schema\":3,\"git_rev\":\"abc123\",\"exhibit\":\"fig2_ljs\",\"sims\":24,\"events\":1000000,\"run_wall_ns\":100000000,\"attribution_pct\":98.50,\"poll_count\":800000,\"poll_wall_ns\":70000000,\"timer_count\":100000,\"timer_wall_ns\":10000000,\"call_count\":100000,\"call_wall_ns\":10000000,\"wake_count\":50000,\"wake_wall_ns\":8000000,\"barrier_rounds\":0,\"barrier_stall_ns\":0,\"wheel_cascades\":12,\"wheel_high_water\":900,\"unix_ts\":1}";
    // Same exhibit, poll 10x slower per event.
    const PROF_2: &str = "{\"kind\":\"profile\",\"schema\":3,\"git_rev\":\"def456\",\"exhibit\":\"fig2_ljs\",\"sims\":24,\"events\":1000000,\"run_wall_ns\":800000000,\"attribution_pct\":97.00,\"poll_count\":800000,\"poll_wall_ns\":700000000,\"timer_count\":100000,\"timer_wall_ns\":11000000,\"call_count\":100000,\"call_wall_ns\":11000000,\"wake_count\":50000,\"wake_wall_ns\":9000000,\"barrier_rounds\":0,\"barrier_stall_ns\":0,\"wheel_cascades\":12,\"wheel_high_water\":900,\"unix_ts\":2}";

    #[test]
    fn report_renders_all_sections_and_is_deterministic() {
        let dir = tmpdir("full");
        let bench = write(
            &dir,
            "bench.json",
            &format!(
                "{SWEEP_A}\n{{\"kind\":\"regen\",\"schema\":3,\"git_rev\":\"abc123\",\"exhibit\":\"fig2_ljs\",\"wall_s\":0.6,\"unix_ts\":1}}\n{PROF_1}\n"
            ),
        );
        let conf = write(
            &dir,
            "conformance.json",
            "{\n  \"ok\": true,\n  \"bench_flags\": []\n}\n",
        );
        let r1 = generate(std::slice::from_ref(&bench), Some(&conf), 8.0).unwrap();
        let r2 = generate(std::slice::from_ref(&bench), Some(&conf), 8.0).unwrap();
        assert_eq!(r1.markdown, r2.markdown, "markdown must be deterministic");
        assert_eq!(r1.json, r2.json);
        assert!(r1.flags.is_empty(), "{:?}", r1.flags);
        assert!(r1.markdown.contains("| fig2_ljs | 1 | 2.00M | 2.00M |"));
        assert!(r1.markdown.contains("| poll | 800000 |"), "{}", r1.markdown);
        assert!(r1.markdown.contains("1.20 max/mean"), "{}", r1.markdown);
        assert!(r1.markdown.contains("**ok**"), "{}", r1.markdown);
        assert!(
            r1.markdown.contains("Attribution: **98.0%"),
            "{}",
            r1.markdown
        );
        assert!(r1.json.contains("\"attribution_pct\": 98.50"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn cost_gate_flags_per_bucket_regressions() {
        let dir = tmpdir("gate");
        let bench = write(&dir, "bench.json", &format!("{PROF_1}\n{PROF_2}\n"));
        let r = generate(std::slice::from_ref(&bench), None, 8.0).unwrap();
        assert_eq!(r.flags.len(), 1, "{:?}", r.flags);
        assert!(r.flags[0].starts_with("fig2_ljs/poll:"), "{}", r.flags[0]);
        assert!(r.markdown.contains("WARN fig2_ljs/poll"), "{}", r.markdown);
        // A single record has no history: nothing to flag.
        let solo = write(&dir, "solo.json", &format!("{PROF_2}\n"));
        let r = generate(std::slice::from_ref(&solo), None, 8.0).unwrap();
        assert!(r.flags.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn worker_array_parsing_is_robust() {
        let objs = json_obj_array(SWEEP_A, "workers");
        assert_eq!(objs.len(), 2);
        assert_eq!(json_num_field(&objs[0], "e"), Some(600000.0));
        assert_eq!(json_num_field(&objs[1], "busy_s"), Some(0.3));
        assert!(json_obj_array(SWEEP_A, "absent").is_empty());
    }
}
