//! Criterion benches over the application-study generators
//! (Figures 2-6) at reduced sizes, plus the cost model (Figures 7-8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elanib_apps::md::{ljs, md_step_time, membrane, MdProblem};
use elanib_apps::nascg::{cg_run, class_a_reduced, CgProblem};
use elanib_apps::sweep3d::{sweep_cube, sweep_time, SweepProblem};
use elanib_core::{figure8_series, EfficiencyTrend};
use elanib_cost::figure7_series;
use elanib_mpi::Network;

fn bench_md(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_fig3_md");
    g.sample_size(10);
    for (name, prob) in [("ljs", ljs()), ("membrane", membrane())] {
        let short = MdProblem { steps: 5, ..prob };
        for net in Network::BOTH {
            g.bench_with_input(BenchmarkId::new(name, net.label()), &short, |b, &p| {
                b.iter(|| md_step_time(net, p, 8, 2))
            });
        }
    }
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_fig5_sweep3d");
    g.sample_size(10);
    let p = SweepProblem {
        iterations: 1,
        ..sweep_cube(60)
    };
    for net in Network::BOTH {
        g.bench_function(net.label(), |b| b.iter(|| sweep_time(net, p, 9, 1)));
    }
    g.finish();
}

fn bench_cg(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_nascg");
    g.sample_size(10);
    let p = CgProblem {
        outer: 2,
        inner: 8,
        ..class_a_reduced(512)
    };
    for net in Network::BOTH {
        g.bench_function(net.label(), |b| b.iter(|| cg_run(net, p, 8, 1)));
    }
    g.finish();
}

fn bench_cost(c: &mut Criterion) {
    let sizes: Vec<usize> = (3..=12).map(|k| 1usize << k).collect();
    c.bench_function("fig7_cost_curves", |b| b.iter(|| figure7_series(&sizes)));
    let measured = [(1usize, 1.0f64), (8, 0.96), (32, 0.94)];
    c.bench_function("fig8_extrapolation", |b| {
        b.iter(|| {
            let t = EfficiencyTrend::fit(&measured);
            (t.at(8192), figure8_series(&measured, 2.0, 8192))
        })
    });
}

criterion_group!(benches, bench_md, bench_sweep, bench_cg, bench_cost);
criterion_main!(benches);
