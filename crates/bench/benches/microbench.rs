//! Criterion benches over the micro-benchmark generators (Figure 1):
//! each target runs a full simulated measurement at reduced iteration
//! counts, so `cargo bench` both exercises every exhibit path and
//! tracks the simulator's own throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elanib_microbench::{beff, pingpong, streaming};
use elanib_mpi::Network;

fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1a_pingpong");
    for net in Network::BOTH {
        for bytes in [8u64, 8192, 1 << 20] {
            g.bench_with_input(BenchmarkId::new(net.label(), bytes), &bytes, |b, &bytes| {
                b.iter(|| pingpong(net, bytes, 10))
            });
        }
    }
    g.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1b_streaming");
    for net in Network::BOTH {
        g.bench_function(net.label(), |b| b.iter(|| streaming(net, 1024, 50)));
    }
    g.finish();
}

fn bench_beff(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1d_beff");
    g.sample_size(10);
    for net in Network::BOTH {
        g.bench_function(net.label(), |b| b.iter(|| beff(net, 4, 1, 1)));
    }
    g.finish();
}

criterion_group!(benches, bench_pingpong, bench_streaming, bench_beff);
criterion_main!(benches);
