//! Criterion benches of the simulation substrate itself: kernel event
//! throughput, resource models, and raw transport cost — the numbers
//! that bound how large an experiment the harness can regenerate.

use criterion::{criterion_group, criterion_main, Criterion};
use elanib_mpi::collectives::{allreduce, barrier, Op};
use elanib_mpi::{run_job, Communicator, JobSpec, Network, RankProgram};
use elanib_simcore::{Dur, FifoChannel, PsResource, Sim};

fn bench_kernel_events(c: &mut Criterion) {
    c.bench_function("kernel_100k_timer_events", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            let s = sim.clone();
            sim.spawn("timers", async move {
                for _ in 0..100_000 {
                    s.sleep(Dur::from_ns(10)).await;
                }
            });
            sim.run().unwrap()
        })
    });
}

fn bench_resources(c: &mut Criterion) {
    c.bench_function("ps_resource_1k_overlapping_jobs", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            let ps = PsResource::new(1e9);
            for i in 0..1000u64 {
                let (p, s) = (ps.clone(), sim.clone());
                sim.spawn(format!("j{i}"), async move {
                    s.sleep(Dur::from_ns(i * 3)).await;
                    p.transfer(&s, 10_000 + i).await;
                });
            }
            sim.run().unwrap()
        })
    });
    c.bench_function("fifo_channel_10k_transfers", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            let ch = FifoChannel::new(1e9, Dur::from_ns(50));
            let s = sim.clone();
            sim.spawn("t", async move {
                for _ in 0..10_000 {
                    ch.transfer(&s, 512).await;
                }
            });
            sim.run().unwrap()
        })
    });
}

#[derive(Clone)]
struct CollectiveStorm;

impl RankProgram for CollectiveStorm {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            for _ in 0..20 {
                barrier(&c).await;
                let _ = allreduce(&c, Op::Sum, &[1.0, 2.0]).await;
            }
        }
    }
}

fn bench_mpi_transports(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi_collective_storm_16ranks");
    g.sample_size(10);
    for net in Network::BOTH {
        g.bench_function(net.label(), |b| {
            b.iter(|| {
                run_job(
                    JobSpec {
                        network: net,
                        nodes: 8,
                        ppn: 2,
                        seed: 3,
                    },
                    CollectiveStorm,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_kernel_events,
    bench_resources,
    bench_mpi_transports
);
criterion_main!(benches);
