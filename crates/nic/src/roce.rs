//! RoCEv2 congestion control (EXTENSION, not in the paper).
//!
//! The third backend of the N-way comparison: InfiniBand verbs
//! semantics carried over lossless(ish) Ethernet. The protocol stack
//! reuses the HCA model wholesale ([`crate::hca::IbNet`] — queue
//! pairs, explicit registration, passive inbox); what changes is the
//! wire (10GbE link parameters, `elanib_fabric::roce_ethernet`) and
//! the congestion machinery modelled here. Three seeded-deterministic
//! modes:
//!
//! * **PFC** ([`RoceMode::Pfc`]): 802.1Qbb priority flow control.
//!   When the cross-traffic backlog on a flow's path crosses
//!   [`RoceParams::pause_threshold`], the switch pauses the sender's
//!   traffic class for [`RoceParams::pause_quanta`]. Pause frames
//!   propagate up the tree: every *concurrently paused* endpoint
//!   multiplies the next pause (the pause tree saturating), bounded
//!   by [`RoceParams::storm_cap`] — which is exactly the pause-storm
//!   collapse that makes PFC-only RoCE fall over at scale.
//! * **DCQCN** ([`RoceMode::Dcqcn`]): rate-based ECN. Backlog past
//!   [`RoceParams::ecn_k`] marks the flow congestion-experienced; the
//!   per-QP rate limiter reacts with multiplicative decrease
//!   ([`RoceParams::md_factor`]) and recovers with additive increase
//!   ([`RoceParams::rai`]) — AIMD pacing instead of stop/go.
//! * **Hybrid** ([`RoceMode::Hybrid`]): DCQCN with gentler marking
//!   plus PFC as a rarely-hit backstop (the threshold sits several
//!   times higher) — the deployed-practice configuration, and the one
//!   expected to stay within ~10% of native InfiniBand.
//!
//! Lossy mode ([`RoceParams::lossy`]) drops PFC's lossless guarantee:
//! a seeded per-packet loss plan is installed on the fabric and
//! recovery rides the PR-4 plumbing unchanged —
//! [`crate::transfer::RecoveryPolicy::IbRc`] whole-message retransmit
//! with typed [`crate::transfer::TransportError`]s.
//!
//! Everything here is deterministic: the only randomness is a
//! SplitMix64 stream seeded from [`RoceParams::seed`] (pause-resume
//! jitter), so a given scenario replays byte-identically.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use elanib_fabric::Fabric;
use elanib_simcore::{Dur, FxHashMap, Sim, SimTime};

/// Which congestion-control mode a RoCEv2 network runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoceMode {
    Pfc,
    Dcqcn,
    Hybrid,
}

impl RoceMode {
    pub const ALL: [RoceMode; 3] = [RoceMode::Pfc, RoceMode::Dcqcn, RoceMode::Hybrid];

    /// Short lowercase label, as used in `ELANIB_BACKEND=roce-<mode>`
    /// and the fuzz repro files.
    pub fn label(self) -> &'static str {
        match self {
            RoceMode::Pfc => "pfc",
            RoceMode::Dcqcn => "dcqcn",
            RoceMode::Hybrid => "hybrid",
        }
    }

    pub fn parse(s: &str) -> Option<RoceMode> {
        match s {
            "pfc" => Some(RoceMode::Pfc),
            "dcqcn" => Some(RoceMode::Dcqcn),
            "hybrid" => Some(RoceMode::Hybrid),
            _ => None,
        }
    }
}

impl std::fmt::Display for RoceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Congestion-control calibration for one RoCEv2 network.
#[derive(Clone, Copy, Debug)]
pub struct RoceParams {
    pub mode: RoceMode,
    /// Traffic class (0..8) the pause/ECN wire signals are tagged
    /// with; RDMA traffic conventionally rides priority 3.
    pub priority: usize,
    /// Cross-traffic backlog (drain time) that triggers a PFC pause.
    pub pause_threshold: Dur,
    /// Base pause duration per pause frame (802.1Qbb quanta are
    /// 512-bit times; switches re-arm them continuously, so the
    /// effective unit is tens of microseconds).
    pub pause_quanta: Dur,
    /// Pause-storm bound: the pause multiplier saturates at this many
    /// concurrently active contenders.
    pub storm_cap: u32,
    /// Storm stall divisor: a pause stalls the sender for
    /// `pause_quanta + serialize × m² / storm_softness`, where `m` is
    /// the contender count (≤ `storm_cap`). Quadratic in the storm
    /// width — pause frames propagate through already-paused
    /// neighbours — so narrow fan-ins barely notice while wide incasts
    /// collapse; larger softness tames the backstop variant.
    pub storm_softness: f64,
    /// Cross-traffic backlog that draws an ECN mark (DCQCN's K
    /// threshold, expressed in drain time).
    pub ecn_k: Dur,
    /// Multiplicative decrease applied to a QP's rate per mark.
    pub md_factor: f64,
    /// Additive rate recovery per unmarked post.
    pub rai: f64,
    /// Rate floor — DCQCN never strangles a QP entirely.
    pub min_rate: f64,
    /// `Some(rate)`: drop PFC's lossless guarantee and run the fabric
    /// with seeded per-packet loss at `rate`; recovery is the IB RC
    /// retransmit path (typed errors on exhaustion).
    pub lossy: Option<f64>,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl RoceParams {
    /// The calibrated defaults for one mode. PFC is stop/go with the
    /// storm amplifier live; DCQCN marks early and aggressively;
    /// Hybrid marks gently and keeps PFC only as a distant backstop.
    pub fn for_mode(mode: RoceMode) -> RoceParams {
        let base = RoceParams {
            mode,
            priority: 3,
            pause_threshold: Dur::from_us(150),
            // Small base quantum: the damage comes from the storm
            // multiplier compounding quadratically, not from any one
            // pause — a wide incast saturates the multiplier and the
            // per-message stall grows to many serialization times,
            // while narrow fan-ins stay harmless.
            pause_quanta: Dur::from_us(4),
            storm_cap: 32,
            // Offered load under a full-width storm of m senders is
            // roughly m / (1 + m²/softness): ≥1 (link saturated, no
            // collapse) through m≈8, ~0.76 at m=15, ~0.38 at m=31.
            storm_softness: 12.0,
            // DCQCN: K deep enough that a transient burst does not
            // mark (the drain-aware signal must exceed a real switch
            // buffer's worth of cross-traffic), decrease shallow
            // enough and recovery fast enough that the rate tracks the
            // sink horizon instead of overshooting past it.
            ecn_k: Dur::from_us(250),
            md_factor: 0.80,
            rai: 0.15,
            min_rate: 0.10,
            lossy: None,
            seed: 0xD0CE,
        };
        match mode {
            RoceMode::Pfc => base,
            RoceMode::Dcqcn => base,
            RoceMode::Hybrid => RoceParams {
                // Backstop PFC: threshold far above DCQCN's operating
                // point, short quanta, no storm amplification.
                pause_threshold: Dur::from_us(900),
                pause_quanta: Dur::from_us(20),
                storm_cap: 1,
                storm_softness: 64.0,
                // Gentle marking: later threshold, shallower decrease,
                // faster recovery.
                ecn_k: Dur::from_us(400),
                md_factor: 0.90,
                rai: 0.20,
                ..base
            },
        }
    }
}

/// End-of-run congestion-control totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoceCcStats {
    /// PFC pause frames emitted.
    pub pauses: u64,
    /// Largest concurrent-pause multiplier observed (1 = no storm).
    pub storm_peak: u64,
    /// ECN congestion-experienced marks.
    pub marks: u64,
}

/// The per-network congestion-control engine. One instance is shared
/// by every QP of a RoCE [`crate::hca::IbNet`]; `IbNet::post` asks it
/// for an injection delay before every wire message.
///
/// The engine keeps its own deterministic schedule model rather than
/// peeking at fabric channel state: when the MPI layer posts a burst,
/// every post lands at the same instant, *before* any transfer has
/// reserved wire time — channel occupancy is blind to offered load at
/// exactly the moment CC must react. So the engine tracks
///
/// * a per-endpoint **injection gate** ([`RoceCc::gate`]): each
///   message is scheduled no earlier than the previous one's paced
///   finish, which is what lets a single burst-time decision stretch
///   into a sustained rate limit;
/// * a per-endpoint **sink horizon** ([`RoceCc::sink_busy`]): when
///   each endpoint's downlink will drain, given everything any sender
///   has scheduled toward it — the queue depth a real switch's
///   PFC/ECN machinery watches;
///
/// and evaluates the congestion signal at the message's *scheduled*
/// start, so a schedule that has already backed off sees the queue it
/// will actually meet, not the one at post time. That closes the loop:
/// pacing drains the signal, the signal releases the pacing.
pub struct RoceCc {
    pub params: RoceParams,
    /// Per-endpoint injection gate: the next message from endpoint `e`
    /// enters the wire no earlier than `gate[e]`.
    gate: RefCell<Vec<SimTime>>,
    /// Per-endpoint sink-drain horizon: when `e`'s downlink goes idle
    /// given every message scheduled toward it so far.
    sink_busy: RefCell<Vec<SimTime>>,
    /// Per-endpoint PFC pause horizon.
    pause_until: RefCell<Vec<SimTime>>,
    /// Current storm width: *distinct* endpoints that have paused
    /// since the storm began. Sticky — it only resets when a post
    /// starts past [`RoceCc::storm_until`], i.e. after every member's
    /// pause horizon has expired. (Distinctness is tracked by epoch,
    /// not by timestamps: per-endpoint schedule times are not monotone
    /// across endpoints, so a lagging endpoint would look "pre-storm"
    /// forever under any time comparison.)
    storm_level: Cell<u64>,
    /// Storm generation counter; bumped each time a fresh storm seeds.
    storm_epoch: Cell<u64>,
    /// Per-endpoint epoch of the storm it last joined.
    joined: RefCell<Vec<u64>>,
    /// Storm liveness horizon (ps): one full pause cycle past the
    /// latest pause. Not merely the latest pause *end*: the schedule
    /// front-runner's next post always starts just past its own pause
    /// end (end + one serialization time), so a storm whose horizon
    /// were the max end would be "over" every time its fastest member
    /// posted. The horizon must outlive a member's whole next cycle.
    storm_until: Cell<u64>,
    /// Per-endpoint own-injection horizon: the time until which the
    /// endpoint's *own* scheduled bytes keep links busy. Sink backlog
    /// beyond this is cross-traffic — the congestion signal.
    /// (Self-queueing behind your own burst is not congestion.)
    own_horizon: RefCell<Vec<SimTime>>,
    /// Per-QP `(src endpoint, dst endpoint)` DCQCN rate, in (0, 1].
    rates: RefCell<FxHashMap<(usize, usize), f64>>,
    pauses: Cell<u64>,
    storm_peak: Cell<u64>,
    marks: Cell<u64>,
    /// SplitMix64 jitter stream state.
    rng: Cell<u64>,
}

impl RoceCc {
    pub fn new(params: RoceParams, n_endpoints: usize) -> Rc<RoceCc> {
        Rc::new(RoceCc {
            params,
            gate: RefCell::new(vec![SimTime::ZERO; n_endpoints]),
            sink_busy: RefCell::new(vec![SimTime::ZERO; n_endpoints]),
            pause_until: RefCell::new(vec![SimTime::ZERO; n_endpoints]),
            storm_level: Cell::new(0),
            storm_epoch: Cell::new(0),
            joined: RefCell::new(vec![0; n_endpoints]),
            storm_until: Cell::new(0),
            own_horizon: RefCell::new(vec![SimTime::ZERO; n_endpoints]),
            rates: RefCell::new(FxHashMap::default()),
            pauses: Cell::new(0),
            storm_peak: Cell::new(0),
            marks: Cell::new(0),
            rng: Cell::new(params.seed),
        })
    }

    pub fn stats(&self) -> RoceCcStats {
        RoceCcStats {
            pauses: self.pauses.get(),
            storm_peak: self.storm_peak.get(),
            marks: self.marks.get(),
        }
    }

    /// Next jitter sample in `[0, cap_ps)` — SplitMix64, so the
    /// sequence is a pure function of [`RoceParams::seed`].
    fn next_jitter_ps(&self, cap_ps: u64) -> u64 {
        let mut z = self.rng.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.rng.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if cap_ps == 0 {
            0
        } else {
            z % cap_ps
        }
    }

    /// Injection delay for one wire message from `src_ep` to `dst_ep`
    /// of `bytes`, given the fabric's state right now. Called by
    /// [`crate::hca::IbNet::post`] before launching the transfer; the
    /// returned delay shifts the message's fabric entry, which is what
    /// turns pause frames and rate limiting into wire idle time.
    pub fn tx_delay(
        &self,
        sim: &Sim,
        fabric: &Fabric,
        src_ep: usize,
        dst_ep: usize,
        bytes: u64,
    ) -> Dur {
        if src_ep == dst_ep {
            return Dur::ZERO; // loopback never reaches the wire
        }
        let now = sim.now();
        let ser = fabric.params.link.serialize(bytes.max(16));
        let p = &self.params;

        // Earliest injection: behind everything this endpoint already
        // has scheduled (line rate is a hard ceiling even with no CC).
        let mut start = {
            let g = self.gate.borrow();
            if g[src_ep] > now {
                g[src_ep]
            } else {
                now
            }
        };

        // Congestion signal, evaluated at the *scheduled* start: how
        // long the sink's downlink will still be backed up when this
        // message enters the wire, minus what this endpoint's own
        // scheduled bytes explain.
        let backlog = {
            let sb = self.sink_busy.borrow();
            if sb[dst_ep] > start {
                sb[dst_ep].since(start)
            } else {
                Dur::ZERO
            }
        };
        let own = {
            let oh = self.own_horizon.borrow();
            if oh[src_ep] > start {
                oh[src_ep].since(start)
            } else {
                Dur::ZERO
            }
        };
        let signal = Dur::from_ps(backlog.as_ps().saturating_sub(own.as_ps()));

        // PFC: Pfc mode always, Hybrid as its high-threshold backstop.
        if matches!(p.mode, RoceMode::Pfc | RoceMode::Hybrid) {
            let mut pu = self.pause_until.borrow_mut();
            let cap = p.storm_cap as u64;
            let start_ps = start.since(SimTime::ZERO).as_ps();
            // A storm ends only when a post starts past every member's
            // pause horizon; until then its width is *sticky*.
            if start_ps > self.storm_until.get() {
                self.storm_level.set(0);
            }
            // A queue over threshold *seeds* a storm; an existing
            // multi-member storm *sustains itself* — pause frames keep
            // propagating between paused switches even after the
            // original queue would have drained (the hysteresis that
            // makes PFC-only collapse at scale, and the reason the
            // queue signal alone cannot end a wide storm). The
            // single-member backstop (`storm_cap == 1`, Hybrid) stays
            // strictly queue-driven.
            let in_storm = cap > 1 && self.storm_level.get() >= 2;
            if signal > p.pause_threshold || in_storm {
                // Distinct-membership ramp: an endpoint joins a given
                // storm at most once. Distinct counting is what makes
                // the multiplier a *width* signal — a narrow fan-in
                // can pause every cycle and still never push it past
                // its own sender count.
                if self.storm_level.get() == 0 {
                    self.storm_epoch.set(self.storm_epoch.get() + 1);
                }
                let mut joined = self.joined.borrow_mut();
                if joined[src_ep] != self.storm_epoch.get() {
                    joined[src_ep] = self.storm_epoch.get();
                    self.storm_level.set(self.storm_level.get() + 1);
                }
                let mult = self.storm_level.get().min(cap).max(1);
                if mult > self.storm_peak.get() {
                    self.storm_peak.set(mult);
                }
                fabric.note_pause(p.priority);
                self.pauses.set(self.pauses.get() + 1);
                if let Some(tr) = sim.tracer() {
                    tr.add("roce.pause_frames", 1);
                }
                // Deterministic resume jitter de-synchronizes the
                // post-pause burst (real switches re-arm pause frames
                // asynchronously).
                let jitter = Dur::from_ps(self.next_jitter_ps(p.pause_quanta.as_ps() / 8));
                let storm = Dur::from_ps(
                    (ser.as_ps() as f64 * (mult * mult) as f64 / p.storm_softness) as u64,
                );
                pu[src_ep] = start + p.pause_quanta + storm + jitter;
                // Keep the storm alive through a member's entire next
                // cycle: stall, then the message itself, then the next
                // stall it will take on arrival.
                let live_until =
                    start_ps + 2 * (p.pause_quanta.as_ps() + storm.as_ps()) + ser.as_ps();
                if live_until > self.storm_until.get() {
                    self.storm_until.set(live_until);
                }
            }
            if pu[src_ep] > start {
                start = pu[src_ep];
            }
        }

        // DCQCN: Dcqcn mode and Hybrid (gentler constants). The gate
        // advance below stretches this message's wire occupancy to
        // `ser / rate` — AIMD pacing instead of stop/go.
        let mut rate = 1.0;
        if matches!(p.mode, RoceMode::Dcqcn | RoceMode::Hybrid) {
            let mut rates = self.rates.borrow_mut();
            let r = rates.entry((src_ep, dst_ep)).or_insert(1.0);
            if signal > p.ecn_k {
                fabric.note_ecn(p.priority);
                self.marks.set(self.marks.get() + 1);
                if let Some(tr) = sim.tracer() {
                    tr.add("roce.ecn_marks", 1);
                }
                *r = (*r * p.md_factor).max(p.min_rate);
            } else {
                *r = (*r + p.rai).min(1.0);
            }
            rate = *r;
        }

        // Commit the schedule: this message occupies [start, start+ser]
        // on its own uplink and the sink's downlink; the gate holds the
        // *next* message back by the paced occupancy.
        let paced = Dur::from_ps((ser.as_ps() as f64 / rate) as u64);
        self.gate.borrow_mut()[src_ep] = start + paced;
        {
            let mut oh = self.own_horizon.borrow_mut();
            let from = if oh[src_ep] > start {
                oh[src_ep]
            } else {
                start
            };
            oh[src_ep] = from + ser;
        }
        {
            let mut sb = self.sink_busy.borrow_mut();
            let from = if sb[dst_ep] > start {
                sb[dst_ep]
            } else {
                start
            };
            sb[dst_ep] = from + ser;
        }
        start.since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elanib_fabric::{roce_ethernet, Topology};

    fn fabric(n: usize) -> Fabric {
        Fabric::new(Topology::single_crossbar(n), roce_ethernet())
    }

    #[test]
    fn uncongested_flow_pays_only_line_rate_spacing() {
        // A lone flow is never paused or marked; its only delay is the
        // injection gate holding a same-instant burst to line rate —
        // message k starts exactly k serialization times in.
        let sim = Sim::new(1);
        let f = fabric(4);
        let cc = RoceCc::new(RoceParams::for_mode(RoceMode::Pfc), 4);
        let ser = f.params.link.serialize(65_536);
        for k in 0..10u64 {
            assert_eq!(cc.tx_delay(&sim, &f, 0, 1, 65_536), ser * k);
        }
        assert_eq!(cc.stats(), RoceCcStats::default());
        assert_eq!(f.cong_stats().total_pauses(), 0);
    }

    #[test]
    fn own_backlog_is_not_congestion() {
        // A single sender saturating its own sink must never draw a
        // mark: the sink backlog is fully explained by the
        // own-injection horizon, so DCQCN keeps the rate at 1 and the
        // spacing stays exactly one serialization time.
        let sim = Sim::new(1);
        let f = fabric(2);
        let cc = RoceCc::new(RoceParams::for_mode(RoceMode::Dcqcn), 2);
        let ser = f.params.link.serialize(1_000_000);
        let mut prev = Dur::ZERO;
        for k in 0..50 {
            let d = cc.tx_delay(&sim, &f, 0, 1, 1_000_000);
            if k > 0 {
                assert_eq!(
                    Dur::from_ps(d.as_ps() - prev.as_ps()),
                    ser,
                    "spacing must stay line-rate"
                );
            }
            prev = d;
        }
        assert_eq!(cc.stats().marks, 0);
    }

    #[test]
    fn cross_traffic_draws_marks_and_throttles() {
        // Two senders incast into endpoint 2: each sees the other's
        // scheduled bytes as cross-traffic once the shared sink backs
        // up, and pacing stretches the schedule past plain line rate.
        let sim = Sim::new(1);
        let f = fabric(3);
        let cc = RoceCc::new(RoceParams::for_mode(RoceMode::Dcqcn), 3);
        let ser = f.params.link.serialize(1_000_000);
        let mut last = Dur::ZERO;
        for _ in 0..40 {
            for src in 0..2 {
                let d = cc.tx_delay(&sim, &f, src, 2, 1_000_000);
                if d > last {
                    last = d;
                }
            }
        }
        assert!(cc.stats().marks > 0, "{:?}", cc.stats());
        // 40 messages per sender at line rate would finish the
        // schedule at 39×ser; pacing must push well past that.
        assert!(last > ser * 45, "paced schedule {last:?} vs ser {ser:?}");
        assert_eq!(f.cong_stats().ecn_marks[3], cc.stats().marks);
    }

    #[test]
    fn pause_storm_amplifies_with_concurrent_pauses() {
        let sim = Sim::new(1);
        let f = fabric(17);
        let cc = RoceCc::new(RoceParams::for_mode(RoceMode::Pfc), 17);
        // 16 senders incast into endpoint 16.
        for _ in 0..30 {
            for src in 0..16 {
                cc.tx_delay(&sim, &f, src, 16, 1_000_000);
            }
        }
        let st = cc.stats();
        assert!(st.pauses > 0);
        assert!(st.storm_peak > 4, "pause tree must saturate: {st:?}");
        assert_eq!(f.cong_stats().pause_frames[3], st.pauses);
    }

    #[test]
    fn storm_stalls_compound_with_fan_in() {
        // The PFC collapse mechanism: the same per-sender offered load
        // takes disproportionately longer to schedule at 16-wide
        // fan-in than at 4-wide, because the pause multiplier
        // compounds. (Ratio of schedule horizons, normalized by the
        // extra senders.)
        let sim = Sim::new(1);
        let horizon = |senders: usize| -> f64 {
            let f = fabric(senders + 1);
            let cc = RoceCc::new(RoceParams::for_mode(RoceMode::Pfc), senders + 1);
            let mut last = Dur::ZERO;
            for _ in 0..12 {
                for src in 0..senders {
                    let d = cc.tx_delay(&sim, &f, src, senders, 1_000_000);
                    if d > last {
                        last = d;
                    }
                }
            }
            last.as_ps() as f64
        };
        let narrow = horizon(4) / 4.0;
        let wide = horizon(16) / 16.0;
        assert!(
            wide > narrow * 2.0,
            "per-sender stall must compound: narrow {narrow} wide {wide}"
        );
    }

    #[test]
    fn jitter_stream_is_seeded_deterministic() {
        let a = RoceCc::new(RoceParams::for_mode(RoceMode::Pfc), 2);
        let b = RoceCc::new(RoceParams::for_mode(RoceMode::Pfc), 2);
        let sa: Vec<u64> = (0..16).map(|_| a.next_jitter_ps(1_000_000)).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_jitter_ps(1_000_000)).collect();
        assert_eq!(sa, sb);
        let c = RoceCc::new(
            RoceParams {
                seed: 7,
                ..RoceParams::for_mode(RoceMode::Pfc)
            },
            2,
        );
        let sc: Vec<u64> = (0..16).map(|_| c.next_jitter_ps(1_000_000)).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn mode_labels_roundtrip() {
        for m in RoceMode::ALL {
            assert_eq!(RoceMode::parse(m.label()), Some(m));
        }
        assert_eq!(RoceMode::parse("nope"), None);
    }
}
