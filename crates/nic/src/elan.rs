//! The Quadrics Elan-4 NIC model (QM500) with its Tports interface.
//!
//! Everything §3 of the paper credits to Quadrics happens *here*, on
//! the NIC, in simulated-NIC-thread time, with no involvement from the
//! host MPI process:
//!
//! * **Tag matching on the NIC** (§3.1): arrivals are matched against
//!   the posted-receive queue by the Elan thread processor; the cost is
//!   `nic_dispatch + match_per_entry × entries scanned` — the "long
//!   queues on a slow processor" trade-off of §3.3.4.
//! * **Unexpected-message buffering** (§3.1): unmatched eager data
//!   parks in a NIC-managed system buffer; a later matching receive
//!   pays one memory-bus copy to drain it.
//! * **Independent progress** (§3.3.3): a long-message RTS is answered
//!   by the *NIC* issuing a get and pulling the data — the host can be
//!   deep in a compute loop and the transfer still completes. Compare
//!   `Hca`, where the same RTS would rot in the inbox.
//! * **Connectionless** (§3.3.1): there is no per-peer setup and no
//!   per-peer receive resource; any rank can send to any other at any
//!   time.
//! * **Implicit registration** (§3.3.2): the Elan MMU shares address
//!   translations with the host OS, so there is no register call and
//!   no pin-down cache in this file at all.

use elanib_simcore::FxHashMap;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

use elanib_fabric::Fabric;
use elanib_nodesim::Node;
use elanib_simcore::{Dur, Flag, Sim};

use crate::common::{Bytes, SerialEngine};
use crate::params::ElanParams;
use crate::transfer::{launch, PairChains, RecoveryPolicy};

/// Message envelope: MPI-level addressing carried by every Tports
/// transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TportHeader {
    pub src_rank: usize,
    pub dst_rank: usize,
    pub tag: i64,
    /// Communicator context id.
    pub ctx: u32,
}

/// Receive selector: which messages a posted receive accepts.
#[derive(Clone, Copy, Debug)]
pub struct TportSel {
    pub dst_rank: usize,
    /// `None` = MPI_ANY_SOURCE.
    pub src: Option<usize>,
    /// `None` = MPI_ANY_TAG.
    pub tag: Option<i64>,
    pub ctx: u32,
}

impl TportSel {
    fn matches(&self, h: &TportHeader) -> bool {
        self.dst_rank == h.dst_rank
            && self.ctx == h.ctx
            && self.src.is_none_or(|s| s == h.src_rank)
            && self.tag.is_none_or(|t| t == h.tag)
    }
}

/// What a completed receive yields.
#[derive(Clone, Debug)]
pub struct TportArrival {
    pub src_rank: usize,
    pub tag: i64,
    pub bytes: u64,
    pub data: Bytes,
}

/// Handle the host blocks on for one posted receive.
#[derive(Clone)]
pub struct TportRecvHandle {
    pub done: Flag,
    result: Rc<RefCell<Option<TportArrival>>>,
}

impl TportRecvHandle {
    fn new() -> TportRecvHandle {
        TportRecvHandle {
            done: Flag::new(),
            result: Rc::new(RefCell::new(None)),
        }
    }

    /// The arrival record; panics if awaited before `done` is set.
    pub fn take(&self) -> TportArrival {
        self.result
            .borrow_mut()
            .take()
            .expect("TportRecvHandle::take before completion")
    }
}

/// Wire transactions between Elan NICs.
enum WireMsg {
    Eager {
        hdr: TportHeader,
        bytes: u64,
        data: Bytes,
    },
    Rts {
        hdr: TportHeader,
        bytes: u64,
        send_id: u64,
        src_ep: usize,
    },
    Get {
        send_id: u64,
        recv_id: u64,
        dst_ep: usize,
    },
    RdvData {
        recv_id: u64,
        bytes: u64,
        data: Bytes,
        hdr: TportHeader,
    },
}

enum UnexpKind {
    Eager(Bytes),
    Rts { send_id: u64, src_ep: usize },
}

struct UnexpMsg {
    hdr: TportHeader,
    bytes: u64,
    kind: UnexpKind,
}

struct PostedRecv {
    sel: TportSel,
    recv_id: u64,
}

struct PendingSend {
    hdr: TportHeader,
    data: Bytes,
    bytes: u64,
    local_done: Flag,
}

/// Per-node Elan adapter.
pub struct ElanPort {
    pub node: Rc<Node>,
    pub ep: usize,
    tx_engine: SerialEngine,
    /// The Elan thread processor: every matching decision is a serial
    /// slot on this engine.
    thread: SerialEngine,
    chains: PairChains,
    posted: RefCell<Vec<PostedRecv>>,
    unexpected: RefCell<Vec<UnexpMsg>>,
    pending_sends: RefCell<FxHashMap<u64, PendingSend>>,
    recvs: RefCell<FxHashMap<u64, TportRecvHandle>>,
    next_id: Cell<u64>,
    /// Stats: messages that arrived before their receive was posted.
    pub unexpected_count: Cell<u64>,
}

/// A whole Elan-4 network.
pub struct ElanNet {
    pub fabric: Rc<Fabric>,
    pub params: ElanParams,
    ports: Vec<Rc<ElanPort>>,
    rank_ep: Vec<usize>,
}

impl ElanNet {
    pub fn new(
        nodes: &[Rc<Node>],
        fabric: Rc<Fabric>,
        ppn: usize,
        params: ElanParams,
    ) -> Rc<ElanNet> {
        assert!(ppn >= 1);
        assert_eq!(fabric.n_endpoints(), nodes.len());
        let ports = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Rc::new(ElanPort {
                    node: n.clone(),
                    ep: i,
                    tx_engine: SerialEngine::new(),
                    thread: SerialEngine::new(),
                    chains: PairChains::new(),
                    posted: RefCell::new(Vec::new()),
                    unexpected: RefCell::new(Vec::new()),
                    pending_sends: RefCell::new(FxHashMap::default()),
                    recvs: RefCell::new(FxHashMap::default()),
                    next_id: Cell::new(1),
                    unexpected_count: Cell::new(0),
                })
            })
            .collect();
        let rank_ep = (0..nodes.len() * ppn).map(|r| r / ppn).collect();
        Rc::new(ElanNet {
            fabric,
            params,
            ports,
            rank_ep,
        })
    }

    pub fn n_ranks(&self) -> usize {
        self.rank_ep.len()
    }
    pub fn node_of(&self, rank: usize) -> &Rc<Node> {
        &self.ports[self.rank_ep[rank]].node
    }
    pub fn endpoint_of(&self, rank: usize) -> usize {
        self.rank_ep[rank]
    }
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.rank_ep[a] == self.rank_ep[b]
    }
    pub fn port_of(&self, rank: usize) -> &Rc<ElanPort> {
        &self.ports[self.rank_ep[rank]]
    }

    /// Total wire transactions across all ports (stats).
    pub fn total_messages(&self) -> u64 {
        self.ports.iter().map(|p| p.messages_sent()).sum()
    }

    /// Total messages that arrived before their receive was posted.
    pub fn total_unexpected(&self) -> u64 {
        self.ports.iter().map(|p| p.unexpected_count.get()).sum()
    }

    /// Two-sided tagged send. The caller has already charged the host
    /// PIO cost ([`ElanParams::pio_issue`]); everything after that is
    /// NIC-driven. Returns the local-completion flag (send buffer
    /// reusable / MPI_Send may return).
    pub fn tport_send(
        self: &Rc<Self>,
        sim: &Sim,
        hdr: TportHeader,
        data: Bytes,
        bytes: u64,
    ) -> Flag {
        let src_ep = self.rank_ep[hdr.src_rank];
        let dst_ep = self.rank_ep[hdr.dst_rank];
        let src_port = &self.ports[src_ep];
        if bytes <= self.params.eager_threshold {
            if let Some(tr) = sim.tracer() {
                tr.add("elan.eager_sends", 1);
            }
            let local = Flag::new();
            self.transmit(
                sim,
                src_ep,
                dst_ep,
                WireMsg::Eager { hdr, bytes, data },
                bytes,
                local.clone(),
            );
            local
        } else {
            // Rendezvous: park the data, ship a small RTS. The local
            // flag is only set once the destination NIC has pulled the
            // data (synchronous-send semantics for long messages).
            if let Some(tr) = sim.tracer() {
                tr.add("elan.rdv_sends", 1);
            }
            let send_id = src_port.alloc_id();
            let local = Flag::new();
            src_port.pending_sends.borrow_mut().insert(
                send_id,
                PendingSend {
                    hdr,
                    data,
                    bytes,
                    local_done: local.clone(),
                },
            );
            self.transmit(
                sim,
                src_ep,
                dst_ep,
                WireMsg::Rts {
                    hdr,
                    bytes,
                    send_id,
                    src_ep,
                },
                16,
                Flag::new(),
            );
            local
        }
    }

    /// Post a receive. The caller has already charged
    /// [`ElanParams::post_recv`]; insertion and any unexpected-queue
    /// match run in NIC-thread time.
    pub fn tport_post_recv(self: &Rc<Self>, sim: &Sim, sel: TportSel) -> TportRecvHandle {
        let port = self.ports[self.rank_ep[sel.dst_rank]].clone();
        let handle = TportRecvHandle::new();
        let recv_id = port.alloc_id();
        port.recvs.borrow_mut().insert(recv_id, handle.clone());
        // Fast path: nothing unexpected — the host appends the
        // descriptor to the NIC-visible queue directly; the Elan thread
        // only gets involved when there is matching work to do.
        if port.unexpected.borrow().is_empty() {
            port.posted.borrow_mut().push(PostedRecv { sel, recv_id });
            if let Some(tr) = sim.tracer() {
                tr.gauge("elan.posted_depth", port.posted.borrow().len() as i64);
            }
            return handle;
        }
        let scanned = port
            .unexpected
            .borrow()
            .iter()
            .position(|u| sel.matches(&u.hdr))
            .map(|i| i + 1)
            .unwrap_or_else(|| port.unexpected.borrow().len());
        let cost = self.params.nic_dispatch
            + Dur::from_ps(self.params.match_per_entry.as_ps() * scanned as u64);
        let slot = port.thread.next_slot(sim, cost);
        let net = self.clone();
        sim.call_at(slot, move |sim| {
            net.nic_post_recv(sim, &port, sel, recv_id);
        });
        handle
    }

    /// NIC-thread half of posting a receive: match the unexpected
    /// queue or append to the posted queue.
    fn nic_post_recv(self: Rc<Self>, sim: &Sim, port: &Rc<ElanPort>, sel: TportSel, recv_id: u64) {
        let pos = port
            .unexpected
            .borrow()
            .iter()
            .position(|u| sel.matches(&u.hdr));
        match pos {
            Some(i) => {
                let u = port.unexpected.borrow_mut().remove(i);
                match u.kind {
                    UnexpKind::Eager(data) => {
                        // Drain the system buffer into the user buffer:
                        // one memory-bus pass, then complete.
                        let net = self.clone();
                        let port = port.clone();
                        let sim2 = sim.clone();
                        let bytes = u.bytes;
                        sim.spawn("elan-unexp-drain", async move {
                            port.node.mem_transfer(&sim2, bytes).await;
                            net.complete_recv(
                                &sim2,
                                &port,
                                recv_id,
                                TportArrival {
                                    src_rank: u.hdr.src_rank,
                                    tag: u.hdr.tag,
                                    bytes,
                                    data,
                                },
                            );
                        });
                    }
                    UnexpKind::Rts { send_id, src_ep } => {
                        self.issue_get(sim, port, send_id, recv_id, src_ep);
                    }
                }
            }
            None => {
                port.posted.borrow_mut().push(PostedRecv { sel, recv_id });
                if let Some(tr) = sim.tracer() {
                    tr.gauge("elan.posted_depth", port.posted.borrow().len() as i64);
                }
            }
        }
    }

    /// Transmit one wire message; arrival enters the destination NIC
    /// thread.
    fn transmit(
        self: &Rc<Self>,
        sim: &Sim,
        src_ep: usize,
        dst_ep: usize,
        msg: WireMsg,
        bytes: u64,
        local_done: Flag,
    ) {
        let src_port = &self.ports[src_ep];
        let dst_port = self.ports[dst_ep].clone();
        let start_at = src_port.tx_engine.next_slot(sim, self.params.nic_dispatch);
        let (prev, tail) = src_port.chains.enqueue(dst_ep);
        let net = self.clone();
        let dst_node = dst_port.node.clone();
        launch(
            sim,
            &self.fabric,
            &src_port.node,
            &dst_node,
            src_ep,
            dst_ep,
            bytes,
            start_at,
            local_done,
            prev,
            tail,
            RecoveryPolicy::elan(&self.params),
            move |sim, result| {
                // Elan's link layer hides transient faults in hardware;
                // a surfaced transport error means the path is
                // persistently dead, which QsNet treats as fatal.
                if let Err(e) = result {
                    panic!("Elan transport failure {src_ep}->{dst_ep}: {e}");
                }
                net.on_arrival(sim, &dst_port, msg);
            },
        );
    }

    /// Wire arrival: claim an Elan-thread slot, then act.
    fn on_arrival(self: Rc<Self>, sim: &Sim, port: &Rc<ElanPort>, msg: WireMsg) {
        // Entries the Elan thread scans before finding (or missing) a
        // match — long posted queues cost real NIC-processor time, the
        // offload risk §3.3.4 cites.
        let scanned = match &msg {
            WireMsg::Eager { hdr, .. } | WireMsg::Rts { hdr, .. } => {
                let posted = port.posted.borrow();
                posted
                    .iter()
                    .position(|p| p.sel.matches(hdr))
                    .map(|i| i + 1)
                    .unwrap_or(posted.len())
            }
            _ => 0,
        };
        let cost = self.params.nic_dispatch
            + Dur::from_ps(self.params.match_per_entry.as_ps() * scanned as u64);
        let slot = port.thread.next_slot(sim, cost);
        let port = port.clone();
        sim.call_at(slot, move |sim| {
            self.nic_handle(sim, &port, msg);
        });
    }

    fn nic_handle(self: Rc<Self>, sim: &Sim, port: &Rc<ElanPort>, msg: WireMsg) {
        match msg {
            WireMsg::Eager { hdr, bytes, data } => {
                match port.match_posted(&hdr) {
                    Some(recv_id) => {
                        // Pre-posted: the wire DMA already placed the
                        // data in the user buffer (zero copy).
                        self.complete_recv(
                            sim,
                            port,
                            recv_id,
                            TportArrival {
                                src_rank: hdr.src_rank,
                                tag: hdr.tag,
                                bytes,
                                data,
                            },
                        );
                    }
                    None => {
                        port.unexpected_count.set(port.unexpected_count.get() + 1);
                        port.unexpected.borrow_mut().push(UnexpMsg {
                            hdr,
                            bytes,
                            kind: UnexpKind::Eager(data),
                        });
                        port.trace_unexpected(sim);
                    }
                }
            }
            WireMsg::Rts {
                hdr,
                bytes,
                send_id,
                src_ep,
            } => match port.match_posted(&hdr) {
                Some(recv_id) => self.issue_get(sim, port, send_id, recv_id, src_ep),
                None => {
                    port.unexpected_count.set(port.unexpected_count.get() + 1);
                    port.unexpected.borrow_mut().push(UnexpMsg {
                        hdr,
                        bytes,
                        kind: UnexpKind::Rts { send_id, src_ep },
                    });
                    port.trace_unexpected(sim);
                }
            },
            WireMsg::Get {
                send_id,
                recv_id,
                dst_ep,
            } => {
                let pending = port
                    .pending_sends
                    .borrow_mut()
                    .remove(&send_id)
                    .expect("Get for unknown send");
                self.transmit(
                    sim,
                    port.ep,
                    dst_ep,
                    WireMsg::RdvData {
                        recv_id,
                        bytes: pending.bytes,
                        data: pending.data,
                        hdr: pending.hdr,
                    },
                    pending.bytes,
                    pending.local_done,
                );
            }
            WireMsg::RdvData {
                recv_id,
                bytes,
                data,
                hdr,
            } => {
                self.complete_recv(
                    sim,
                    port,
                    recv_id,
                    TportArrival {
                        src_rank: hdr.src_rank,
                        tag: hdr.tag,
                        bytes,
                        data,
                    },
                );
            }
        }
    }

    /// The destination NIC pulls rendezvous data: send a get request to
    /// the source NIC.
    fn issue_get(
        self: &Rc<Self>,
        sim: &Sim,
        dst_port: &Rc<ElanPort>,
        send_id: u64,
        recv_id: u64,
        src_ep: usize,
    ) {
        self.transmit(
            sim,
            dst_port.ep,
            src_ep,
            WireMsg::Get {
                send_id,
                recv_id,
                dst_ep: dst_port.ep,
            },
            16,
            Flag::new(),
        );
    }

    /// NIC writes the completion event; the host notices after the
    /// wake-up latency.
    fn complete_recv(&self, sim: &Sim, port: &Rc<ElanPort>, recv_id: u64, arrival: TportArrival) {
        let handle = port
            .recvs
            .borrow_mut()
            .remove(&recv_id)
            .expect("completion for unknown recv");
        sim.call_in(self.params.host_wakeup, move |_| {
            *handle.result.borrow_mut() = Some(arrival);
            handle.done.set();
        });
    }
}

impl ElanPort {
    fn alloc_id(&self) -> u64 {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        id
    }

    /// First posted receive matching `hdr`, removed from the queue.
    fn match_posted(&self, hdr: &TportHeader) -> Option<u64> {
        let mut posted = self.posted.borrow_mut();
        let pos = posted.iter().position(|p| p.sel.matches(hdr))?;
        Some(posted.remove(pos).recv_id)
    }

    pub fn posted_depth(&self) -> usize {
        self.posted.borrow().len()
    }
    pub fn unexpected_depth(&self) -> usize {
        self.unexpected.borrow().len()
    }
    /// Wire transactions this port has injected.
    pub fn messages_sent(&self) -> u64 {
        self.tx_engine.jobs_served()
    }
    /// Events the Elan thread processor has dispatched.
    pub fn thread_events(&self) -> u64 {
        self.thread.jobs_served()
    }

    /// Account one unexpected arrival into the tracer: the NIC-buffer
    /// depth the §3.1 system-buffer argument is about.
    fn trace_unexpected(&self, sim: &Sim) {
        if let Some(tr) = sim.tracer() {
            tr.add("elan.unexpected", 1);
            tr.gauge(
                "elan.unexpected_depth",
                self.unexpected.borrow().len() as i64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elanib_fabric::{elan4, Topology};
    use elanib_nodesim::NodeParams;
    use std::rc::Rc;

    fn net(nodes: usize, ppn: usize) -> (Sim, Rc<ElanNet>) {
        let sim = Sim::new(1);
        let nn: Vec<_> = (0..nodes)
            .map(|i| Node::new(i, NodeParams::default()))
            .collect();
        let fabric = Rc::new(Fabric::new(Topology::single_crossbar(nodes), elan4()));
        let n = ElanNet::new(&nn, fabric, ppn, ElanParams::default());
        (sim, n)
    }

    fn hdr(src: usize, dst: usize, tag: i64) -> TportHeader {
        TportHeader {
            src_rank: src,
            dst_rank: dst,
            tag,
            ctx: 0,
        }
    }

    fn sel(dst: usize, src: Option<usize>, tag: Option<i64>) -> TportSel {
        TportSel {
            dst_rank: dst,
            src,
            tag,
            ctx: 0,
        }
    }

    fn payload(n: u8) -> Bytes {
        Rc::new(vec![n; 8])
    }

    #[test]
    fn preposted_eager_recv_completes() {
        let (sim, net) = net(2, 1);
        let h = net.tport_post_recv(&sim, sel(1, Some(0), Some(7)));
        net.tport_send(&sim, hdr(0, 1, 7), payload(42), 64);
        let (h2, s2) = (h.clone(), sim.clone());
        sim.spawn("rx", async move {
            h2.done.wait().await;
            let a = h2.take();
            assert_eq!(a.src_rank, 0);
            assert_eq!(a.tag, 7);
            assert_eq!(a.bytes, 64);
            assert_eq!(a.data[0], 42);
            // One-way eager small-message time: a few microseconds.
            assert!(s2.now().as_us_f64() < 5.0, "{}", s2.now());
        });
        sim.run().unwrap();
    }

    #[test]
    fn unexpected_eager_costs_a_drain_copy() {
        // Timing: recv posted long after arrival must still complete,
        // and the pre-posted path must be at least as fast.
        let (sim, net) = net(2, 1);
        net.tport_send(&sim, hdr(0, 1, 1), payload(9), 2048);
        let (n2, s2) = (net.clone(), sim.clone());
        sim.spawn("late-rx", async move {
            s2.sleep(Dur::from_us(50)).await; // message long arrived
            assert_eq!(n2.port_of(1).unexpected_depth(), 1);
            let h = n2.tport_post_recv(&s2, sel(1, None, None));
            let before = s2.now();
            h.done.wait().await;
            let a = h.take();
            assert_eq!(a.data[0], 9);
            // Completion needed NIC dispatch + drain copy, not a wire
            // round trip.
            let took = s2.now().since(before).as_us_f64();
            assert!(took > 0.5 && took < 10.0, "took {took}");
            assert_eq!(n2.port_of(1).unexpected_depth(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn rendezvous_roundtrip_preposted() {
        let (sim, net) = net(2, 1);
        let bytes = 1_000_000; // > eager_threshold
        let h = net.tport_post_recv(&sim, sel(1, Some(0), Some(3)));
        let local = net.tport_send(&sim, hdr(0, 1, 3), payload(5), bytes);
        let (h2, l2, s2) = (h.clone(), local.clone(), sim.clone());
        sim.spawn("rx", async move {
            h2.done.wait().await;
            let a = h2.take();
            assert_eq!(a.bytes, bytes);
            assert_eq!(a.src_rank, 0);
            // ~1 MB at ~0.9 GB/s ≈ 1.1 ms (+ handshake).
            let t = s2.now().as_us_f64();
            assert!(t > 1000.0 && t < 1600.0, "t={t}");
            l2.wait().await; // sender completion must also fire
        });
        sim.run().unwrap();
    }

    #[test]
    fn rendezvous_waits_for_late_receiver() {
        let (sim, net) = net(2, 1);
        let bytes = 500_000;
        let local = net.tport_send(&sim, hdr(0, 1, 3), payload(5), bytes);
        let (n2, s2, l2) = (net.clone(), sim.clone(), local.clone());
        sim.spawn("late-rx", async move {
            s2.sleep(Dur::from_ms(2)).await;
            assert!(!l2.is_set(), "send must not complete before recv posts");
            let h = n2.tport_post_recv(&s2, sel(1, Some(0), Some(3)));
            h.done.wait().await;
            assert_eq!(h.take().bytes, bytes);
            l2.wait().await;
        });
        sim.run().unwrap();
    }

    #[test]
    fn independent_progress_rendezvous_completes_while_host_computes() {
        // The §3.3.3 behaviour: receive pre-posted, then the host goes
        // compute-bound; the NICs complete the whole rendezvous anyway.
        let (sim, net) = net(2, 1);
        let bytes = 2_000_000;
        let h = net.tport_post_recv(&sim, sel(1, Some(0), None));
        net.tport_send(&sim, hdr(0, 1, 0), payload(1), bytes);
        let (s2, h2) = (sim.clone(), h.clone());
        sim.spawn("compute-bound-host", async move {
            // Host busy for 50 ms — far longer than the transfer.
            s2.sleep(Dur::from_ms(50)).await;
            // Transfer already done despite zero host attention.
            assert!(h2.done.is_set());
        });
        sim.run().unwrap();
    }

    #[test]
    fn wildcard_and_specific_matching() {
        let (sim, net) = net(3, 1);
        // rank2 posts: any-source tag 5, then src0 any-tag.
        let h_any = net.tport_post_recv(&sim, sel(2, None, Some(5)));
        let h_src0 = net.tport_post_recv(&sim, sel(2, Some(0), None));
        net.tport_send(&sim, hdr(1, 2, 5), payload(11), 32); // matches h_any
        net.tport_send(&sim, hdr(0, 2, 9), payload(22), 32); // matches h_src0
        let (a, b, s2) = (h_any.clone(), h_src0.clone(), sim.clone());
        sim.spawn("rx", async move {
            a.done.wait().await;
            b.done.wait().await;
            let _ = s2;
            assert_eq!(a.take().data[0], 11);
            assert_eq!(b.take().data[0], 22);
        });
        sim.run().unwrap();
    }

    #[test]
    fn same_tag_messages_match_in_send_order() {
        let (sim, net) = net(2, 1);
        let h1 = net.tport_post_recv(&sim, sel(1, Some(0), Some(1)));
        let h2 = net.tport_post_recv(&sim, sel(1, Some(0), Some(1)));
        net.tport_send(&sim, hdr(0, 1, 1), payload(1), 64);
        net.tport_send(&sim, hdr(0, 1, 1), payload(2), 64);
        let (a, b) = (h1.clone(), h2.clone());
        sim.spawn("rx", async move {
            a.done.wait().await;
            b.done.wait().await;
            assert_eq!(a.take().data[0], 1, "first posted gets first sent");
            assert_eq!(b.take().data[0], 2);
        });
        sim.run().unwrap();
    }

    #[test]
    fn two_ppn_ranks_share_one_port() {
        let (sim, net) = net(2, 2);
        assert_eq!(net.n_ranks(), 4);
        assert!(net.same_node(0, 1));
        assert!(!net.same_node(1, 2));
        // rank0 (node0) -> rank3 (node1).
        let h = net.tport_post_recv(&sim, sel(3, Some(0), Some(0)));
        net.tport_send(&sim, hdr(0, 3, 0), payload(7), 64);
        let a = h.clone();
        sim.spawn("rx", async move {
            a.done.wait().await;
            assert_eq!(a.take().data[0], 7);
        });
        sim.run().unwrap();
    }
}
