//! Explicit memory registration with a pin-down (registration) cache.
//!
//! InfiniBand requires every buffer involved in RDMA to be registered
//! (pinned + HCA translation entries installed) — §3.3.2 of the paper.
//! MPI implementations amortize the cost with an LRU cache of
//! registrations keyed by buffer identity. MVAPICH 0.9.2's cache was
//! small enough that a 4 MB ping-pong (two 4 MB buffers per process)
//! thrashed it, producing the bandwidth cliff in Figure 1(b); the
//! capacity default in [`crate::params::HcaParams`] reproduces exactly
//! that.

use std::collections::VecDeque;

use elanib_simcore::Dur;

use crate::params::HcaParams;

const PAGE: u64 = 4096;

/// Logical identity of an application buffer. The simulation has no
/// real addresses; MPI assigns stable ids per (rank, buffer role).
pub type RegionId = u64;

/// LRU registration cache for one process.
pub struct RegCache {
    capacity: u64,
    /// Front = least recently used.
    entries: VecDeque<(RegionId, u64)>,
    bytes: u64,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl RegCache {
    pub fn new(capacity: u64) -> RegCache {
        RegCache {
            capacity,
            entries: VecDeque::new(),
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Register `region` of `len` bytes; returns the host time the
    /// operation costs (zero on a cache hit).
    ///
    /// On a miss the region is registered at `reg_base +
    /// reg_per_page * ceil(len/4K)` and LRU entries are evicted (an
    /// eviction is a deregistration; its cost is folded into the
    /// per-page figure, as real pin-down caches do the unpin lazily).
    pub fn register(&mut self, p: &HcaParams, region: RegionId, len: u64) -> Dur {
        // Hit: refresh LRU position.
        if let Some(pos) = self
            .entries
            .iter()
            .position(|&(r, l)| r == region && l >= len)
        {
            let e = self.entries.remove(pos).unwrap();
            self.entries.push_back(e);
            self.hits += 1;
            return Dur::ZERO;
        }
        // A re-registration at a larger size replaces the old entry.
        if let Some(pos) = self.entries.iter().position(|&(r, _)| r == region) {
            let (_, old) = self.entries.remove(pos).unwrap();
            self.bytes -= old;
        }
        self.misses += 1;
        // Evict until the new region fits (oversized regions evict
        // everything and live alone, exceeding capacity — matching the
        // pathological pin-down behaviour).
        while self.bytes + len > self.capacity && !self.entries.is_empty() {
            let (_, l) = self.entries.pop_front().unwrap();
            self.bytes -= l;
            self.evictions += 1;
        }
        self.entries.push_back((region, len));
        self.bytes += len;
        let pages = len.div_ceil(PAGE).max(1);
        p.reg_base + Dur::from_ps(p.reg_per_page.as_ps() * pages)
    }

    pub fn resident_bytes(&self) -> u64 {
        self.bytes
    }
    pub fn resident_regions(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HcaParams {
        HcaParams::default()
    }

    #[test]
    fn first_registration_costs_misses_then_hits() {
        let p = params();
        let mut c = RegCache::new(p.reg_cache_bytes);
        let d1 = c.register(&p, 1, 8192);
        assert_eq!(d1, p.reg_base + Dur::from_ps(p.reg_per_page.as_ps() * 2));
        let d2 = c.register(&p, 1, 8192);
        assert_eq!(d2, Dur::ZERO);
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn small_registration_costs_at_least_one_page() {
        let p = params();
        let mut c = RegCache::new(p.reg_cache_bytes);
        let d = c.register(&p, 1, 1);
        assert_eq!(d, p.reg_base + p.reg_per_page);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let p = params();
        let mut c = RegCache::new(3 * 1024 * 1024);
        c.register(&p, 1, 1024 * 1024);
        c.register(&p, 2, 1024 * 1024);
        c.register(&p, 3, 1024 * 1024);
        // Region 4 evicts region 1 (LRU).
        c.register(&p, 4, 1024 * 1024);
        assert_eq!(c.evictions, 1);
        assert_ne!(c.register(&p, 1, 1024 * 1024), Dur::ZERO); // 1 was evicted
        assert_eq!(c.register(&p, 4, 1024 * 1024), Dur::ZERO); // 4 still hot? no: 1's reload evicted 2, not 4
    }

    #[test]
    fn four_mb_pingpong_pair_thrashes_default_cache() {
        // The Figure 1(b) cliff: send+recv 4 MiB buffers cannot both
        // stay registered, so every iteration re-registers both.
        let p = params();
        let mut c = RegCache::new(p.reg_cache_bytes);
        let four = 4 * 1024 * 1024;
        let mut paid = 0;
        for _ in 0..10 {
            if c.register(&p, 100, four) > Dur::ZERO {
                paid += 1;
            }
            if c.register(&p, 200, four) > Dur::ZERO {
                paid += 1;
            }
        }
        assert_eq!(paid, 20, "every registration must miss");
    }

    #[test]
    fn two_mb_pingpong_pair_fits() {
        let p = params();
        let mut c = RegCache::new(p.reg_cache_bytes);
        let two = 2 * 1024 * 1024;
        c.register(&p, 100, two);
        c.register(&p, 200, two);
        for _ in 0..10 {
            assert_eq!(c.register(&p, 100, two), Dur::ZERO);
            assert_eq!(c.register(&p, 200, two), Dur::ZERO);
        }
    }

    #[test]
    fn grow_in_place_replaces_entry() {
        let p = params();
        let mut c = RegCache::new(p.reg_cache_bytes);
        c.register(&p, 1, 4096);
        let d = c.register(&p, 1, 8192); // larger: must re-register
        assert_ne!(d, Dur::ZERO);
        assert_eq!(c.resident_regions(), 1);
        assert_eq!(c.resident_bytes(), 8192);
        // Smaller request inside the registered extent is a hit.
        assert_eq!(c.register(&p, 1, 4096), Dur::ZERO);
    }
}
