//! The N-way NIC backend contract.
//!
//! The paper's 2-way IB-vs-Elan comparison used to be hard-coded into
//! the transport layer; [`NicBackend`] is the extracted contract every
//! interconnect model satisfies — post, match, register, recover —
//! so new backends (RoCEv2 today, a 3D torus tomorrow) slot in
//! without touching the measurement harnesses.
//!
//! Design note: the high-throughput protocol stacks in `elanib-mpi`
//! keep calling the concrete [`IbNet`]/[`ElanNet`] APIs directly —
//! the trait impls here *delegate* to that same machinery rather than
//! replacing it, so porting the existing backends onto the trait is
//! pure code motion and every committed exhibit stays byte-identical.
//! The trait surface is what the shared conformance suite
//! (`tests/backend_contract.rs`), the backend registry
//! ([`BackendKind`]), and the CI backend matrix program against.
//!
//! Semantics captured by the contract:
//!
//! * **post** — two-sided tagged send; returns a [`SendHandle`] whose
//!   `local` flag is buffer-reuse (set even on transport failure:
//!   flush semantics) and whose error slot carries the typed
//!   [`TransportError`] when recovery gives up.
//! * **match** — `post_recv` with optional source/tag wildcards;
//!   per-pair FIFO matching order regardless of where matching runs
//!   (host software for the verbs backends, NIC thread for Elan).
//! * **register** — explicit pin-down cost where the backend has one
//!   ([`NicBackend::reg_stats`] returns `None` for implicit-MMU
//!   backends like Elan).
//! * **recover** — the [`RecoveryPolicy`] the transport runs under,
//!   and whether a persistently dead path surfaces as a typed error
//!   (IB/RoCE QP error) or is fatal (QsNet).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use elanib_fabric::{elan_fabric_with, ib_fabric_with, roce_fabric_with, Fabric, FaultPlan};
use elanib_nodesim::{Node, NodeParams};
use elanib_simcore::{Dur, Flag, Sim};

use crate::common::no_bytes;
use crate::elan::{ElanNet, TportHeader, TportSel};
use crate::hca::IbNet;
use crate::params::{ElanParams, HcaParams};
use crate::regcache::RegionId;
use crate::roce::{RoceCc, RoceMode, RoceParams};
use crate::transfer::{RecoveryPolicy, TransportError};

/// What a completed backend receive yields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    pub src: usize,
    pub tag: i64,
    pub bytes: u64,
}

/// Handle for one posted send.
#[derive(Clone)]
pub struct SendHandle {
    /// Buffer-reuse flag: set when the source DMA has drained — also
    /// on transport failure (flush semantics).
    pub local: Flag,
    err: Rc<RefCell<Option<TransportError>>>,
}

impl SendHandle {
    /// The typed transport failure, if recovery gave up. `None` until
    /// completion, and forever on success.
    pub fn error(&self) -> Option<TransportError> {
        self.err.borrow().clone()
    }
}

/// Handle for one posted receive.
#[derive(Clone)]
pub struct RecvHandle {
    pub done: Flag,
    arrival: Rc<RefCell<Option<Arrival>>>,
}

impl RecvHandle {
    fn new() -> RecvHandle {
        RecvHandle {
            done: Flag::new(),
            arrival: Rc::new(RefCell::new(None)),
        }
    }

    fn complete(&self, a: Arrival) {
        *self.arrival.borrow_mut() = Some(a);
        self.done.set();
    }

    /// The arrival record; panics if read before `done` is set.
    pub fn take(&self) -> Arrival {
        self.arrival
            .borrow()
            .expect("RecvHandle::take before completion")
    }
}

/// The N-way NIC contract: what every modelled interconnect offers the
/// layers above, regardless of where the work happens (host, NIC
/// firmware, or NIC thread processor).
pub trait NicBackend {
    /// Registry name (`hca`, `elan`, `roce-pfc`, ...).
    fn name(&self) -> &'static str;
    fn n_ranks(&self) -> usize;
    /// Two-sided tagged send of `bytes` from rank `src` to rank `dst`.
    fn post(&self, sim: &Sim, src: usize, dst: usize, tag: i64, bytes: u64) -> SendHandle;
    /// Post a receive at rank `dst`; `None` selectors are wildcards
    /// (MPI_ANY_SOURCE / MPI_ANY_TAG).
    fn post_recv(&self, sim: &Sim, dst: usize, src: Option<usize>, tag: Option<i64>) -> RecvHandle;
    /// Register `region` (`len` bytes) for rank `rank`; returns the
    /// host cost (zero on a pin-down-cache hit, and always zero for
    /// implicit-registration backends).
    fn register(&self, sim: &Sim, rank: usize, region: RegionId, len: u64) -> Dur;
    /// Whole-network pin-down cache counters `(hits, misses,
    /// evictions)`; `None` when registration is implicit (no cache).
    fn reg_stats(&self) -> Option<(u64, u64, u64)>;
    /// The transport's fault-recovery behaviour.
    fn recovery(&self) -> RecoveryPolicy;
    /// `true` when a persistently dead path is fatal (panics) rather
    /// than surfacing a typed [`TransportError`] on the handle.
    fn fatal_on_dead_path(&self) -> bool;
    /// Total wire messages injected so far.
    fn messages_sent(&self) -> u64;
}

/// Wire message of the verbs-family backend adapters: just the
/// envelope — the trait surface carries no payload bytes.
#[derive(Clone, Copy, Debug)]
pub struct BkMsg {
    tag: i64,
    bytes: u64,
}

/// Host-side match queues of one rank (the verbs backends match in
/// host software; the HCA only delivers).
#[derive(Default)]
struct MatchQueues {
    posted: Vec<(Option<usize>, Option<i64>, RecvHandle)>,
    unexpected: Vec<Arrival>,
}

impl MatchQueues {
    fn arrive(q: &Rc<RefCell<MatchQueues>>, a: Arrival) {
        let mut q = q.borrow_mut();
        let pos = q.posted.iter().position(|(src, tag, _)| {
            src.is_none_or(|s| s == a.src) && tag.is_none_or(|t| t == a.tag)
        });
        match pos {
            Some(i) => q.posted.remove(i).2.complete(a),
            None => q.unexpected.push(a),
        }
    }

    fn post(&mut self, src: Option<usize>, tag: Option<i64>) -> RecvHandle {
        let h = RecvHandle::new();
        let pos = self
            .unexpected
            .iter()
            .position(|a| src.is_none_or(|s| s == a.src) && tag.is_none_or(|t| t == a.tag));
        match pos {
            Some(i) => h.complete(self.unexpected.remove(i)),
            None => self.posted.push((src, tag, h.clone())),
        }
        h
    }
}

/// Verbs-family backend adapter: plain InfiniBand (`hca`) and the
/// three RoCEv2 modes share this wrapper — they differ only in the
/// fabric underneath and the attached congestion-control engine.
pub struct VerbsBackend {
    name: &'static str,
    net: Rc<IbNet<BkMsg>>,
    queues: Vec<Rc<RefCell<MatchQueues>>>,
}

impl VerbsBackend {
    fn build(
        name: &'static str,
        fabric: Rc<Fabric>,
        n_nodes: usize,
        ppn: usize,
        params: HcaParams,
        cc: Option<Rc<RoceCc>>,
    ) -> Rc<VerbsBackend> {
        let nodes: Vec<Rc<Node>> = (0..n_nodes)
            .map(|i| Node::new(i, NodeParams::default()))
            .collect();
        let net = Rc::new(IbNet::new_with_cc(&nodes, fabric, ppn, params, cc));
        let queues: Vec<Rc<RefCell<MatchQueues>>> = (0..net.n_ranks())
            .map(|_| Rc::new(RefCell::new(MatchQueues::default())))
            .collect();
        for (r, q) in queues.iter().enumerate() {
            let q = q.clone();
            net.hca(r)
                .set_arrival_hook(Box::new(move |_sim, src, m: BkMsg| {
                    MatchQueues::arrive(
                        &q,
                        Arrival {
                            src,
                            tag: m.tag,
                            bytes: m.bytes,
                        },
                    );
                }));
        }
        Rc::new(VerbsBackend { name, net, queues })
    }

    /// The underlying network (exhibits and tests that need the
    /// concrete API).
    pub fn net(&self) -> &Rc<IbNet<BkMsg>> {
        &self.net
    }
}

impl NicBackend for VerbsBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn n_ranks(&self) -> usize {
        self.net.n_ranks()
    }

    fn post(&self, sim: &Sim, src: usize, dst: usize, tag: i64, bytes: u64) -> SendHandle {
        let h = self.net.post(sim, src, dst, BkMsg { tag, bytes }, bytes);
        SendHandle {
            local: h.local.clone(),
            err: h.err_slot(),
        }
    }

    fn post_recv(
        &self,
        _sim: &Sim,
        dst: usize,
        src: Option<usize>,
        tag: Option<i64>,
    ) -> RecvHandle {
        self.queues[dst].borrow_mut().post(src, tag)
    }

    fn register(&self, _sim: &Sim, rank: usize, region: RegionId, len: u64) -> Dur {
        self.net.hca(rank).register(region, len)
    }

    fn reg_stats(&self) -> Option<(u64, u64, u64)> {
        let mut t = (0, 0, 0);
        for r in 0..self.net.n_ranks() {
            let (h, m, e) = self.net.hca(r).regcache_stats();
            t = (t.0 + h, t.1 + m, t.2 + e);
        }
        Some(t)
    }

    fn recovery(&self) -> RecoveryPolicy {
        RecoveryPolicy::ib(&self.net.params)
    }

    fn fatal_on_dead_path(&self) -> bool {
        false
    }

    fn messages_sent(&self) -> u64 {
        self.net.total_messages()
    }
}

/// Elan-4 backend adapter: delegates to the Tports machinery (NIC-side
/// matching, implicit registration, link-level recovery).
pub struct ElanBackend {
    net: Rc<ElanNet>,
    params: ElanParams,
}

impl NicBackend for ElanBackend {
    fn name(&self) -> &'static str {
        "elan"
    }

    fn n_ranks(&self) -> usize {
        self.net.n_ranks()
    }

    fn post(&self, sim: &Sim, src: usize, dst: usize, tag: i64, bytes: u64) -> SendHandle {
        let hdr = TportHeader {
            src_rank: src,
            dst_rank: dst,
            tag,
            ctx: 0,
        };
        let local = self.net.tport_send(sim, hdr, no_bytes(), bytes);
        SendHandle {
            local,
            // QsNet surfaces no per-send typed error: a dead path is
            // fatal (see `fatal_on_dead_path`).
            err: Rc::new(RefCell::new(None)),
        }
    }

    fn post_recv(&self, sim: &Sim, dst: usize, src: Option<usize>, tag: Option<i64>) -> RecvHandle {
        let sel = TportSel {
            dst_rank: dst,
            src,
            tag,
            ctx: 0,
        };
        let th = self.net.tport_post_recv(sim, sel);
        let rh = RecvHandle::new();
        let (rh2, th2) = (rh.clone(), th.clone());
        sim.spawn("bk-elan-recv", async move {
            th2.done.wait().await;
            let a = th2.take();
            rh2.complete(Arrival {
                src: a.src_rank,
                tag: a.tag,
                bytes: a.bytes,
            });
        });
        rh
    }

    fn register(&self, _sim: &Sim, _rank: usize, _region: RegionId, _len: u64) -> Dur {
        Dur::ZERO // Elan MMU: registration is implicit (§3.3.2)
    }

    fn reg_stats(&self) -> Option<(u64, u64, u64)> {
        None
    }

    fn recovery(&self) -> RecoveryPolicy {
        RecoveryPolicy::elan(&self.params)
    }

    fn fatal_on_dead_path(&self) -> bool {
        true
    }

    fn messages_sent(&self) -> u64 {
        self.net.total_messages()
    }
}

/// The backend registry: every interconnect the simulation platform
/// can instantiate, addressable by name (`ELANIB_BACKEND`, the CI
/// backend matrix, the fuzz scenario space).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    Hca,
    Elan,
    Roce(RoceMode),
}

impl BackendKind {
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Hca,
        BackendKind::Elan,
        BackendKind::Roce(RoceMode::Pfc),
        BackendKind::Roce(RoceMode::Dcqcn),
        BackendKind::Roce(RoceMode::Hybrid),
    ];

    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Hca => "hca",
            BackendKind::Elan => "elan",
            BackendKind::Roce(RoceMode::Pfc) => "roce-pfc",
            BackendKind::Roce(RoceMode::Dcqcn) => "roce-dcqcn",
            BackendKind::Roce(RoceMode::Hybrid) => "roce-hybrid",
        }
    }

    /// Parse a registry name; `ib`/`infiniband` alias `hca`, and a
    /// bare `roce` means the hybrid (deployed-practice) mode.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "hca" | "ib" | "infiniband" => Some(BackendKind::Hca),
            "elan" | "elan4" | "quadrics" => Some(BackendKind::Elan),
            "roce" | "roce-hybrid" => Some(BackendKind::Roce(RoceMode::Hybrid)),
            "roce-pfc" => Some(BackendKind::Roce(RoceMode::Pfc)),
            "roce-dcqcn" => Some(BackendKind::Roce(RoceMode::Dcqcn)),
            _ => None,
        }
    }

    /// Instantiate this backend for `n_nodes × ppn` ranks with an
    /// optional fault plan, on default parameters.
    pub fn build(
        self,
        n_nodes: usize,
        ppn: usize,
        faults: Option<Arc<FaultPlan>>,
    ) -> Rc<dyn NicBackend> {
        match self {
            BackendKind::Hca => VerbsBackend::build(
                "hca",
                Rc::new(ib_fabric_with(n_nodes, faults)),
                n_nodes,
                ppn,
                HcaParams::default(),
                None,
            ),
            BackendKind::Elan => {
                let nodes: Vec<Rc<Node>> = (0..n_nodes)
                    .map(|i| Node::new(i, NodeParams::default()))
                    .collect();
                let fabric = Rc::new(elan_fabric_with(n_nodes, faults));
                let params = ElanParams::default();
                Rc::new(ElanBackend {
                    net: ElanNet::new(&nodes, fabric, ppn, params),
                    params,
                })
            }
            BackendKind::Roce(mode) => {
                let params = RoceParams::for_mode(mode);
                let name = match mode {
                    RoceMode::Pfc => "roce-pfc",
                    RoceMode::Dcqcn => "roce-dcqcn",
                    RoceMode::Hybrid => "roce-hybrid",
                };
                VerbsBackend::build(
                    name,
                    Rc::new(roce_fabric_with(n_nodes, faults)),
                    n_nodes,
                    ppn,
                    HcaParams::default(),
                    Some(RoceCc::new(params, n_nodes)),
                )
            }
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_roundtrip() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::parse(b.name()), Some(b));
        }
        assert_eq!(BackendKind::parse("ib"), Some(BackendKind::Hca));
        assert_eq!(
            BackendKind::parse("roce"),
            Some(BackendKind::Roce(RoceMode::Hybrid))
        );
        assert_eq!(BackendKind::parse("myrinet"), None);
    }

    #[test]
    fn registry_builds_every_backend() {
        let sim = Sim::new(1);
        for b in BackendKind::ALL {
            let bk = b.build(2, 1, None);
            assert_eq!(bk.name(), b.name());
            assert_eq!(bk.n_ranks(), 2);
            let r = bk.post_recv(&sim, 1, Some(0), Some(5));
            bk.post(&sim, 0, 1, 5, 256);
            let r2 = r.clone();
            sim.spawn("rx", async move {
                r2.done.wait().await;
                assert_eq!(
                    r2.take(),
                    Arrival {
                        src: 0,
                        tag: 5,
                        bytes: 256
                    }
                );
            });
            sim.run().unwrap();
            assert!(bk.messages_sent() > 0);
        }
    }
}
