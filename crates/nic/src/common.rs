//! Shared NIC plumbing: payload handles and serial engines.

use std::cell::Cell;
use std::rc::Rc;

use elanib_simcore::{Dur, Sim, SimTime};

/// Application payload. Reference-counted so that "copies" in the
/// protocol models are free — copy *costs* are charged explicitly
/// against the memory-bus model, never by cloning bytes.
pub type Bytes = Rc<Vec<u8>>;

/// Empty payload singleton helper.
pub fn no_bytes() -> Bytes {
    thread_local! {
        static EMPTY: Bytes = Rc::new(Vec::new());
    }
    EMPTY.with(|e| e.clone())
}

/// A serial hardware engine (HCA WQE pipeline, Elan thread processor):
/// requests are served one at a time in arrival order, each occupying
/// the engine for a caller-specified time. Implemented as busy-until
/// bookkeeping so no persistent task is needed.
#[derive(Clone, Default)]
pub struct SerialEngine {
    busy_until: Rc<Cell<SimTime>>,
    jobs: Rc<Cell<u64>>,
}

impl SerialEngine {
    pub fn new() -> SerialEngine {
        SerialEngine::default()
    }

    /// Claim the engine for `cost` starting no earlier than now;
    /// returns the instant the engine finishes this job.
    pub fn next_slot(&self, sim: &Sim, cost: Dur) -> SimTime {
        let start = sim.now().max_t(self.busy_until.get());
        let end = start + cost;
        self.busy_until.set(end);
        self.jobs.set(self.jobs.get() + 1);
        end
    }

    /// Claim the engine starting no earlier than `earliest`.
    pub fn next_slot_from(&self, earliest: SimTime, cost: Dur) -> SimTime {
        let start = earliest.max_t(self.busy_until.get());
        let end = start + cost;
        self.busy_until.set(end);
        self.jobs.set(self.jobs.get() + 1);
        end
    }

    pub fn jobs_served(&self) -> u64 {
        self.jobs.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_engine_spaces_jobs() {
        let sim = Sim::new(1);
        let e = SerialEngine::new();
        let a = e.next_slot(&sim, Dur::from_us(1));
        let b = e.next_slot(&sim, Dur::from_us(1));
        assert_eq!(a, SimTime::ZERO + Dur::from_us(1));
        assert_eq!(b, SimTime::ZERO + Dur::from_us(2));
        assert_eq!(e.jobs_served(), 2);
    }

    #[test]
    fn serial_engine_idle_gap() {
        let _sim = Sim::new(1);
        let e = SerialEngine::new();
        let _ = e.next_slot_from(SimTime::ZERO + Dur::from_us(5), Dur::from_us(1));
        let b = e.next_slot_from(SimTime::ZERO + Dur::from_us(10), Dur::from_us(1));
        assert_eq!(b, SimTime::ZERO + Dur::from_us(11));
    }

    #[test]
    fn payload_handle_is_cheap_to_clone() {
        let b: Bytes = Rc::new(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(Rc::strong_count(&b), 2);
        assert_eq!(c[1], 2);
    }
}
