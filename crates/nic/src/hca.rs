//! The 4X InfiniBand host channel adapter model (Voltaire HCS 400).
//!
//! Deliberately dumb hardware, faithful to §3 of the paper:
//!
//! * **Connection-oriented** (§3.3.1): a queue pair must be set up per
//!   peer before any transfer; [`IbNet::connect_all`] charges the full
//!   O(P) setup at init time, and per-peer receive resources
//!   (MVAPICH's eager RDMA buffers) are accounted per connection.
//! * **Explicit registration** (§3.3.2): [`Hca::register`] consults the
//!   pin-down cache and returns the host cost of any miss.
//! * **No matching, no progress** (§3.3.3/3.3.4): the HCA's only
//!   delivery action is to place the message record in the destination
//!   process's [`inbox`](Hca::inbox) — a passive queue. *Nothing*
//!   happens to it until host software (the MVAPICH-style progress
//!   engine in `elanib-mpi`) polls; an RTS landing while the target
//!   rank computes sits unprocessed, which is precisely the paper's
//!   independent-progress argument.
//!
//! The inbox is per *process* (rank), while the DMA engines and the
//! physical port are per *node* — two ranks on one node (2 PPN) share
//! the PCI-X path and the HCA engines but have separate queues.

use std::cell::RefCell;
use std::rc::Rc;

use elanib_fabric::Fabric;
use elanib_nodesim::Node;
use elanib_simcore::{Dur, Flag, Mailbox, Sim};

use crate::common::SerialEngine;
use crate::params::HcaParams;
use crate::regcache::{RegCache, RegionId};
use crate::transfer::{launch, PairChains, RecoveryPolicy, TransportError};

/// Handle returned by [`IbNet::post`]: the buffer-reuse flag plus the
/// transport outcome of this specific work request.
pub struct PostHandle {
    /// Set when the source buffer is reusable (source DMA drained) —
    /// also set on failure (flush semantics).
    pub local: Flag,
    err: Rc<RefCell<Option<TransportError>>>,
}

impl PostHandle {
    /// The typed transport failure of this WQE, if recovery gave up.
    /// `None` until completion, and forever on success.
    pub fn error(&self) -> Option<TransportError> {
        self.err.borrow().clone()
    }

    /// The shared error slot — lets the backend trait expose the same
    /// outcome without holding the whole handle.
    pub(crate) fn err_slot(&self) -> Rc<RefCell<Option<TransportError>>> {
        self.err.clone()
    }
}

/// Per-node HCA hardware: the engines and ordering chains shared by
/// every rank on the node.
pub struct HcaPort {
    pub node: Rc<Node>,
    pub ep: usize,
    tx_engine: SerialEngine,
    rx_engine: SerialEngine,
    chains: PairChains,
}

impl HcaPort {
    /// Work requests this port's send engine has processed.
    pub fn messages_sent(&self) -> u64 {
        self.tx_engine.jobs_served()
    }
}

/// Interrupt-style delivery hook (see [`Hca::set_arrival_hook`]).
pub type ArrivalHook<M> = Box<dyn Fn(&Sim, usize, M)>;

/// Per-rank HCA state: registration cache (MVAPICH keeps one per
/// process) and the passive receive queue.
pub struct Hca<M> {
    pub rank: usize,
    pub port: Rc<HcaPort>,
    pub params: HcaParams,
    regcache: RefCell<RegCache>,
    /// Passive arrival queue: `(source rank, protocol message)`.
    /// The host progress engine is the only consumer.
    pub inbox: Mailbox<(usize, M)>,
    connections: RefCell<usize>,
    /// When set, arrivals are dispatched through this hook instead of
    /// queued in the inbox — models an interrupt-driven progress
    /// engine (the §7 independent-progress ablation). Default: unset,
    /// i.e. the faithful passive-inbox behaviour.
    hook: RefCell<Option<ArrivalHook<M>>>,
    /// First transport error on any of this rank's connections: the
    /// QP error state. Further sends flush; the progress engine
    /// surfaces it instead of spinning forever.
    qp_error: RefCell<Option<TransportError>>,
    /// Set the instant [`qp_error`](Hca::qp_error) becomes `Some` —
    /// lets the progress engine race on it without polling.
    pub qp_error_flag: Flag,
}

/// A whole InfiniBand network: fabric + one HCA view per rank.
pub struct IbNet<M> {
    pub fabric: Rc<Fabric>,
    pub params: HcaParams,
    ports: Vec<Rc<HcaPort>>,
    hcas: Vec<Rc<Hca<M>>>,
    /// rank -> fabric endpoint (node id).
    rank_ep: Vec<usize>,
    /// Shared never-written error slot handed to every [`PostHandle`]
    /// when the fabric has no fault plan. Transport errors only arise
    /// from fault injection, so on the fault-free hot path all posts
    /// can alias one slot instead of allocating an `Rc` per WQE.
    no_err: Rc<RefCell<Option<TransportError>>>,
    /// RoCEv2 congestion control (EXTENSION). `None` — the plain
    /// InfiniBand case — leaves the post path untouched.
    cc: Option<Rc<crate::roce::RoceCc>>,
}

impl<M: 'static> IbNet<M> {
    /// Build a network for `nodes` with `ppn` ranks per node. Rank `r`
    /// lives on node `r / ppn`, CPU `r % ppn` (block placement, as the
    /// paper's MPI launches did).
    pub fn new(nodes: &[Rc<Node>], fabric: Rc<Fabric>, ppn: usize, params: HcaParams) -> IbNet<M> {
        IbNet::new_with_cc(nodes, fabric, ppn, params, None)
    }

    /// [`IbNet::new`] with a RoCEv2 congestion-control engine attached
    /// (EXTENSION): every post asks `cc` for an injection delay before
    /// entering the fabric. `None` is byte-identical to [`IbNet::new`].
    pub fn new_with_cc(
        nodes: &[Rc<Node>],
        fabric: Rc<Fabric>,
        ppn: usize,
        params: HcaParams,
        cc: Option<Rc<crate::roce::RoceCc>>,
    ) -> IbNet<M> {
        assert!(ppn >= 1);
        assert_eq!(fabric.n_endpoints(), nodes.len());
        let ports: Vec<Rc<HcaPort>> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Rc::new(HcaPort {
                    node: n.clone(),
                    ep: i,
                    tx_engine: SerialEngine::new(),
                    rx_engine: SerialEngine::new(),
                    chains: PairChains::new(),
                })
            })
            .collect();
        let nranks = nodes.len() * ppn;
        let hcas = (0..nranks)
            .map(|r| {
                Rc::new(Hca {
                    rank: r,
                    port: ports[r / ppn].clone(),
                    params,
                    regcache: RefCell::new(RegCache::new(params.reg_cache_bytes)),
                    inbox: Mailbox::new(),
                    connections: RefCell::new(0),
                    hook: RefCell::new(None),
                    qp_error: RefCell::new(None),
                    qp_error_flag: Flag::new(),
                })
            })
            .collect();
        let rank_ep = (0..nranks).map(|r| r / ppn).collect();
        IbNet {
            fabric,
            params,
            ports,
            hcas,
            rank_ep,
            no_err: Rc::new(RefCell::new(None)),
            cc,
        }
    }

    /// The attached congestion-control engine, when this net is a
    /// RoCEv2 instance.
    pub fn cc(&self) -> Option<&Rc<crate::roce::RoceCc>> {
        self.cc.as_ref()
    }

    pub fn n_ranks(&self) -> usize {
        self.hcas.len()
    }

    pub fn hca(&self, rank: usize) -> &Rc<Hca<M>> {
        &self.hcas[rank]
    }

    pub fn node_of(&self, rank: usize) -> &Rc<Node> {
        &self.ports[self.rank_ep[rank]].node
    }

    pub fn endpoint_of(&self, rank: usize) -> usize {
        self.rank_ep[rank]
    }

    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.rank_ep[a] == self.rank_ep[b]
    }

    /// Total work requests across all ports (stats).
    pub fn total_messages(&self) -> u64 {
        self.ports.iter().map(|p| p.messages_sent()).sum()
    }

    /// Time for rank `r` to establish queue pairs with all remote
    /// peers, as MVAPICH 0.9.2 does inside `MPI_Init` (fully connected
    /// at startup — the connection-oriented cost of §3.3.1).
    pub fn connection_setup_time(&self, rank: usize) -> Dur {
        let remote_peers = (0..self.n_ranks())
            .filter(|&p| p != rank && !self.same_node(rank, p))
            .count();
        *self.hcas[rank].connections.borrow_mut() = remote_peers;
        Dur::from_ps(self.params.qp_setup.as_ps() * remote_peers as u64)
    }

    /// Transmit `m` with `bytes` of wire payload from `src` rank to
    /// `dst` rank (must be on different nodes). Returns a
    /// [`PostHandle`]: `local` is set when the source buffer is
    /// reusable (source DMA drained). Delivery pushes `(src, m)` into
    /// the destination inbox after the destination HCA's
    /// receive-engine slot — and nothing more: the destination host
    /// discovers it only by polling.
    ///
    /// If the transport gives up (fault plan + `retry_cnt`/`rnr_retry`
    /// exhausted), the message is never delivered; the error is stored
    /// on the handle and the *source* rank's QP enters the error state
    /// ([`Hca::qp_error`]).
    pub fn post(&self, sim: &Sim, src: usize, dst: usize, m: M, bytes: u64) -> PostHandle {
        let src_port = &self.ports[self.rank_ep[src]];
        let dst_port = self.ports[self.rank_ep[dst]].clone();
        let dst_hca = self.hcas[dst].clone();
        let src_hca = self.hcas[src].clone();
        let local_done = Flag::new();
        // The send engine serializes all WQEs on this node's HCA —
        // including the sibling rank's in 2 PPN mode.
        let start_at = src_port.tx_engine.next_slot(sim, self.params.wqe_engine);
        // RoCEv2 only: congestion control may hold the message back
        // (PFC pause) or pace it (DCQCN rate limiter) before it enters
        // the fabric.
        let start_at = match &self.cc {
            None => start_at,
            Some(cc) => {
                start_at
                    + cc.tx_delay(
                        sim,
                        &self.fabric,
                        self.rank_ep[src],
                        self.rank_ep[dst],
                        bytes,
                    )
            }
        };
        let (prev, tail) = src_port.chains.enqueue(dst);
        let rx_cost = self.params.rx_engine;
        let dst_node = dst_port.node.clone();
        if let Some(tr) = sim.tracer() {
            tr.add("hca.posts", 1);
            tr.add("hca.post_bytes", bytes);
        }
        // A dedicated per-WQE error slot is only needed when faults can
        // actually produce one; otherwise alias the shared empty slot.
        let err: Rc<RefCell<Option<TransportError>>> = if self.fabric.faults().is_some() {
            Rc::new(RefCell::new(None))
        } else {
            self.no_err.clone()
        };
        let err2 = err.clone();
        launch(
            sim,
            &self.fabric,
            &src_port.node,
            &dst_node,
            src_port.ep,
            dst_port.ep,
            bytes,
            start_at,
            local_done.clone(),
            prev,
            tail,
            RecoveryPolicy::ib(&self.params),
            move |sim, result| {
                if let Err(e) = result {
                    *err2.borrow_mut() = Some(e.clone());
                    src_hca.fail_qp(e);
                    if let Some(tr) = sim.tracer() {
                        tr.add("hca.qp_errors", 1);
                    }
                    return;
                }
                // Receive-side HCA processing (CQE/steering) is serial
                // per port, then the record becomes host-visible.
                let slot = dst_port.rx_engine.next_slot(sim, rx_cost);
                let hca = dst_hca;
                sim.call_at(slot, move |sim| {
                    let hook = hca.hook.borrow();
                    match &*hook {
                        Some(h) => h(sim, src, m),
                        None => {
                            hca.inbox.push((src, m));
                            if let Some(tr) = sim.tracer() {
                                // Depth of the passive queue at delivery:
                                // how far host polling lags the NIC.
                                tr.gauge("hca.inbox_depth", hca.inbox.len() as i64);
                            }
                        }
                    }
                });
            },
        );
        PostHandle {
            local: local_done,
            err,
        }
    }
}

impl<M> Hca<M> {
    /// The first transport error observed on this rank's connections
    /// (the QP error state), if any.
    pub fn qp_error(&self) -> Option<TransportError> {
        self.qp_error.borrow().clone()
    }

    /// Drive this rank's QP into the error state. First error wins;
    /// the flag wakes anything racing on it.
    pub fn fail_qp(&self, e: TransportError) {
        let mut slot = self.qp_error.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
            self.qp_error_flag.set();
        }
    }

    /// Install an interrupt-style delivery hook: arrivals bypass the
    /// inbox and invoke `h` at hardware-delivery time. Used only by
    /// the independent-progress ablation.
    pub fn set_arrival_hook(&self, h: ArrivalHook<M>) {
        *self.hook.borrow_mut() = Some(h);
    }

    /// Register `region` (`len` bytes) through the pin-down cache;
    /// returns the host time the caller must charge (zero on a hit).
    pub fn register(&self, region: RegionId, len: u64) -> Dur {
        self.regcache
            .borrow_mut()
            .register(&self.params, region, len)
    }

    /// [`register`](Hca::register) plus regcache hit/miss/evict
    /// accounting into the simulation's tracer. The protocol layers use
    /// this variant; the counter names are part of the metrics surface
    /// (`regcache.hits` / `regcache.misses` / `regcache.evictions`).
    pub fn register_traced(&self, sim: &Sim, region: RegionId, len: u64) -> Dur {
        let tr = match sim.tracer() {
            None => return self.register(region, len),
            Some(tr) => tr,
        };
        let mut c = self.regcache.borrow_mut();
        let before = (c.hits, c.misses, c.evictions);
        let cost = c.register(&self.params, region, len);
        tr.add("regcache.hits", c.hits - before.0);
        tr.add("regcache.misses", c.misses - before.1);
        tr.add("regcache.evictions", c.evictions - before.2);
        cost
    }

    /// Registration-cache statistics `(hits, misses, evictions)`.
    pub fn regcache_stats(&self) -> (u64, u64, u64) {
        let c = self.regcache.borrow();
        (c.hits, c.misses, c.evictions)
    }

    /// Host cost of one progress-engine poll sweep. MVAPICH polls a
    /// per-peer set of eager RDMA buffers, so the sweep cost grows
    /// linearly with connected peers — the §4.1 observation that
    /// "buffer space ... grows with the number of processes" has a
    /// time cost too.
    pub fn poll_sweep_cost(&self) -> Dur {
        let peers = *self.connections.borrow();
        Dur::from_ns(100) + Dur::from_ns(20) * peers as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elanib_fabric::{infiniband_4x, Topology};
    use elanib_nodesim::NodeParams;
    use std::cell::Cell;

    #[derive(Debug, PartialEq)]
    struct TestMsg(u64);

    fn net(nodes: usize, ppn: usize) -> (Sim, Rc<IbNet<TestMsg>>) {
        let sim = Sim::new(1);
        let nn: Vec<_> = (0..nodes)
            .map(|i| Node::new(i, NodeParams::default()))
            .collect();
        let fabric = Rc::new(Fabric::new(
            Topology::single_crossbar(nodes),
            infiniband_4x(),
        ));
        let n = Rc::new(IbNet::new(&nn, fabric, ppn, HcaParams::default()));
        (sim, n)
    }

    #[test]
    fn post_delivers_to_inbox_in_order() {
        let (sim, net) = net(2, 1);
        for i in 0..5 {
            net.post(&sim, 0, 1, TestMsg(i), 64);
        }
        let n2 = net.clone();
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        sim.spawn("rx", async move {
            for _ in 0..5 {
                let (src, m) = n2.hca(1).inbox.recv().await;
                assert_eq!(src, 0);
                g.borrow_mut().push(m.0);
            }
        });
        sim.run().unwrap();
        assert_eq!(*got.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mixed_sizes_still_deliver_in_order() {
        let (sim, net) = net(2, 1);
        net.post(&sim, 0, 1, TestMsg(0), 2_000_000);
        net.post(&sim, 0, 1, TestMsg(1), 16);
        let n2 = net.clone();
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        sim.spawn("rx", async move {
            for _ in 0..2 {
                let (_, m) = n2.hca(1).inbox.recv().await;
                g.borrow_mut().push(m.0);
            }
        });
        sim.run().unwrap();
        assert_eq!(*got.borrow(), vec![0, 1]);
    }

    #[test]
    fn connection_setup_scales_with_remote_peers() {
        let (_sim, net) = net(4, 2); // 8 ranks
        let d = net.connection_setup_time(0);
        // Rank 0: 8 ranks total, 1 sibling on-node => 6 remote peers.
        assert_eq!(d, HcaParams::default().qp_setup * 6);
        // Poll sweep now reflects 6 peers.
        let p = net.hca(0).poll_sweep_cost();
        assert_eq!(p, Dur::from_ns(100) + Dur::from_ns(20) * 6);
    }

    #[test]
    fn intra_node_post_loops_back_through_nic() {
        let (sim, net) = net(2, 2);
        net.post(&sim, 0, 1, TestMsg(0), 64); // ranks 0,1 on node 0
        let n2 = net.clone();
        let t = Rc::new(Cell::new(0.0));
        let t2 = t.clone();
        let s2 = sim.clone();
        sim.spawn("rx", async move {
            let (src, m) = n2.hca(1).inbox.recv().await;
            assert_eq!((src, m.0), (0, 0));
            t2.set(s2.now().as_us_f64());
        });
        sim.run().unwrap();
        // Loopback is fast but not free: two PCI-X crossings plus the
        // HCA engines.
        assert!(t.get() > 0.5 && t.get() < 5.0, "{}", t.get());
    }

    #[test]
    fn local_done_signals_buffer_reuse() {
        let (sim, net) = net(2, 1);
        let h = net.post(&sim, 0, 1, TestMsg(9), 1_000_000);
        let seen = Rc::new(Cell::new(false));
        let (s2, seen2) = (sim.clone(), seen.clone());
        sim.spawn("wait-local", async move {
            h.local.wait().await;
            assert!(h.error().is_none());
            assert!(s2.now().as_us_f64() > 0.0);
            seen2.set(true);
        });
        // Drain the inbox so the run completes.
        let n2 = net.clone();
        sim.spawn("rx", async move {
            let _ = n2.hca(1).inbox.recv().await;
        });
        sim.run().unwrap();
        assert!(seen.get());
    }

    #[test]
    fn exhausted_retries_surface_as_qp_error_not_hang() {
        use elanib_fabric::faults::FaultPlan;
        use std::sync::Arc;
        let sim = Sim::new(1);
        let nn: Vec<_> = (0..2)
            .map(|i| Node::new(i, NodeParams::default()))
            .collect();
        // Endpoint 1's only cable is down for the whole run.
        let plan = Arc::new(FaultPlan::parse("outage=link1@0+10s").unwrap());
        let fabric = Rc::new(Fabric::with_faults(
            Topology::single_crossbar(2),
            infiniband_4x(),
            Some(plan),
        ));
        let params = HcaParams {
            retry_cnt: 2,
            ack_timeout: Dur::from_us(100),
            ..HcaParams::default()
        };
        let net: Rc<IbNet<TestMsg>> = Rc::new(IbNet::new(&nn, fabric, 1, params));
        let h = net.post(&sim, 0, 1, TestMsg(1), 64);
        // The run terminates (no deadlock): delivery never happens but
        // the flush still returns the buffer and records the error.
        sim.run().unwrap();
        assert!(h.local.is_set());
        assert_eq!(
            h.error(),
            Some(TransportError::RetryExceeded {
                src: 0,
                dst: 1,
                bytes: 64,
                attempts: 3,
            })
        );
        assert_eq!(net.hca(0).qp_error(), h.error());
        assert!(net.hca(0).qp_error_flag.is_set());
        assert!(net.hca(1).qp_error().is_none());
        assert_eq!(net.hca(1).inbox.len(), 0);
    }

    #[test]
    fn register_traced_counters_match_hand_computed_sequence() {
        use elanib_simcore::trace::Tracer;
        // 3 MiB cache, 1 MiB regions — small enough to walk the LRU by
        // hand. Expected state after each step is noted inline.
        let sim = Sim::with_tracer(1, Tracer::forced(1));
        let nn: Vec<_> = (0..2)
            .map(|i| Node::new(i, NodeParams::default()))
            .collect();
        let fabric = Rc::new(Fabric::new(Topology::single_crossbar(2), infiniband_4x()));
        let params = HcaParams {
            reg_cache_bytes: 3 * 1024 * 1024,
            ..HcaParams::default()
        };
        let net: Rc<IbNet<TestMsg>> = Rc::new(IbNet::new(&nn, fabric, 1, params));
        let h = net.hca(0);
        let mb = 1024 * 1024;
        for (region, expect_hit) in [
            (1u64, false), // cold miss              LRU: 1
            (2, false),    // cold miss              LRU: 1,2
            (3, false),    // cold miss (full)       LRU: 1,2,3
            (1, true),     // hit refreshes          LRU: 2,3,1
            (4, false),    // miss, evicts 2         LRU: 3,1,4
            (3, true),     // hit refreshes          LRU: 1,4,3
            (2, false),    // miss, evicts 1         LRU: 4,3,2
        ] {
            let cost = h.register_traced(&sim, region, mb);
            assert_eq!(cost == Dur::ZERO, expect_hit, "region {region}");
        }
        let tr = sim.tracer().unwrap();
        assert_eq!(tr.counter("regcache.hits"), 2);
        assert_eq!(tr.counter("regcache.misses"), 5);
        assert_eq!(tr.counter("regcache.evictions"), 2);
        // The tracer view must agree with the cache's own counters.
        assert_eq!(h.regcache_stats(), (2, 5, 2));
    }

    #[test]
    fn registration_costs_flow_through() {
        let (_sim, net) = net(2, 1);
        let h = net.hca(0);
        let c1 = h.register(7, 65536);
        assert!(c1 > Dur::ZERO);
        assert_eq!(h.register(7, 65536), Dur::ZERO);
        let (hits, misses, _) = h.regcache_stats();
        assert_eq!((hits, misses), (1, 1));
    }
}
