//! # elanib-nic — network interface models
//!
//! Two NICs, one comparison. This crate models the architectural
//! differences §3 of the paper argues are decisive:
//!
//! | property | [`hca::Hca`] (4X InfiniBand) | [`elan::ElanNet`] (Elan-4) |
//! |---|---|---|
//! | interface style | queue pairs + RDMA (verbs) | Tports (tagged two-sided) |
//! | connections | per-peer QPs at init | connectionless |
//! | memory registration | explicit + pin-down cache | implicit (NIC MMU) |
//! | MPI matching | host software | NIC thread processor |
//! | independent progress | none (host must poll) | yes (NIC completes all) |
//! | host per-message cost | copy + WQE + doorbell + poll | one PIO |
//!
//! The common substrate — the overlapped DMA/wire/DMA pipeline and the
//! per-pair ordering guarantee — lives in [`transfer`].

pub mod backend;
pub mod common;
pub mod elan;
pub mod hca;
pub mod params;
pub mod regcache;
pub mod roce;
pub mod transfer;

pub use backend::{Arrival, BackendKind, NicBackend, RecvHandle, SendHandle};
pub use common::{no_bytes, Bytes, SerialEngine};
pub use elan::{ElanNet, ElanPort, TportArrival, TportHeader, TportRecvHandle, TportSel};
pub use hca::{Hca, HcaPort, IbNet, PostHandle};
pub use params::{ElanParams, HcaParams};
pub use regcache::{RegCache, RegionId};
pub use roce::{RoceCc, RoceCcStats, RoceMode, RoceParams};
pub use transfer::{RecoveryPolicy, TransportError};
