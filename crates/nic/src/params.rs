//! Calibrated NIC-level timing constants.
//!
//! Every constant is tied to a statement in the paper (§3, §4.1) or to
//! the well-documented behaviour of the 2004 hardware/software
//! generation (Voltaire HCS 400 + MVAPICH 0.9.2; QM500 + Quadrics
//! MPI). The micro-benchmark tests in `elanib-microbench` assert the
//! emergent end-to-end numbers the paper reports (Elan-4 ping-pong
//! latency ≈ half of InfiniBand's; 8 KB bandwidths of ≈552 vs ≈249
//! MB/s; >5x streaming advantage at small sizes; the 4 MB
//! registration-thrash dip), so these constants cannot drift without a
//! test failing.

use elanib_simcore::Dur;

/// InfiniBand HCA (Voltaire HCS 400) + MVAPICH-visible hardware costs.
#[derive(Clone, Copy, Debug)]
pub struct HcaParams {
    /// Host cost to build a WQE and ring the doorbell (PIO across
    /// PCI-X).
    pub doorbell: Dur,
    /// HCA firmware/engine occupancy per work request — the serial
    /// per-message cost that bounds small-message injection rate.
    pub wqe_engine: Dur,
    /// HCA processing on the receive side (CQE generation, steering).
    pub rx_engine: Dur,
    /// Cost for host software to *detect* a completion by polling once
    /// the data is in memory (poll granularity, cacheline invalidate).
    pub poll_detect: Dur,
    /// Explicit memory registration: fixed syscall/driver cost.
    pub reg_base: Dur,
    /// Explicit memory registration: per-4KB-page pinning + HCA TLB
    /// update cost.
    pub reg_per_page: Dur,
    /// Pin-down (registration) cache capacity in bytes. MVAPICH 0.9.2
    /// thrashes this at 4 MB messages — "the dramatic drop in bandwidth
    /// for InfiniBand using a 4 MB message size ... is reportedly due
    /// to thrashing when registering memory" (§4.1). 6 MiB holds one
    /// 4 MiB buffer but not the ping-pong pair.
    pub reg_cache_bytes: u64,
    /// One-time queue-pair connection setup cost per peer (charged at
    /// init: InfiniBand is connection-oriented, §3.3.1).
    pub qp_setup: Dur,
    /// RC transport ACK timeout: how long the requester waits for an
    /// acknowledgement before retransmitting the whole message. IB's
    /// Local ACK Timeout is coarse (4.096 µs × 2^n steps); 2004-era
    /// stacks ran it in the 100 µs+ range — this granularity is what
    /// makes IB latency *cliff* under loss rather than degrade.
    pub ack_timeout: Dur,
    /// Bounded transport retries; on exhaustion the QP enters the
    /// error state (IBTA RC semantics; 7 is the verbs maximum).
    pub retry_cnt: u32,
    /// Receiver-not-ready NAK back-off before the requester retries.
    pub rnr_timer: Dur,
    /// Bounded RNR retries before the QP errors out.
    pub rnr_retry: u32,
}

impl Default for HcaParams {
    fn default() -> Self {
        HcaParams {
            doorbell: Dur::from_ns(300),
            wqe_engine: Dur::from_ns(1200),
            rx_engine: Dur::from_ns(1300),
            poll_detect: Dur::from_ns(700),
            reg_base: Dur::from_us(2),
            reg_per_page: Dur::from_ns(1200),
            reg_cache_bytes: 6 * 1024 * 1024,
            qp_setup: Dur::from_us(150),
            ack_timeout: Dur::from_us(100),
            retry_cnt: 7,
            rnr_timer: Dur::from_us(50),
            rnr_retry: 7,
        }
    }
}

/// Quadrics Elan-4 (QM500) costs.
#[derive(Clone, Copy, Debug)]
pub struct ElanParams {
    /// Host cost to launch a Tports operation (STEN packet PIO write —
    /// Elan-4's very low host overhead, §3.3.4/§3.3.5).
    pub pio_issue: Dur,
    /// Elan thread-processor occupancy per message event (the
    /// "slow processor on the network interface" of §3.3.4).
    pub nic_dispatch: Dur,
    /// Additional Elan thread cost per receive-queue entry traversed
    /// during tag matching (long queues are the offload risk the paper
    /// cites from reference [22]).
    pub match_per_entry: Dur,
    /// Cost to post a receive descriptor from the host.
    pub post_recv: Dur,
    /// Host wake-up cost when the NIC completes an operation the host
    /// is blocked on (event write + cacheline transfer).
    pub host_wakeup: Dur,
    /// Eager/rendezvous threshold: messages at or below go as a single
    /// data-bearing transaction; larger ones do a NIC-to-NIC
    /// RTS → get handshake (no host involvement — this is what keeps
    /// Elan-4's protocol switch invisible in Figure 1(a)).
    pub eager_threshold: u64,
    /// EXTENSION: QsNet's hardware barrier network. `Some(latency)`
    /// completes a full-machine barrier in a constant `latency`
    /// regardless of rank count. `None` (default, and what the paper's
    /// software measured through MPI) uses the software dissemination
    /// barrier.
    pub hw_barrier: Option<Dur>,
    /// Link-level hardware retry turnaround per lost/corrupt packet
    /// (Elan detects per-packet CRC failure in the link layer and
    /// retransmits immediately — three orders of magnitude finer than
    /// IB's end-to-end ACK timeout, §3.1's reliability-in-hardware).
    pub link_retry: Dur,
    /// Bounded link retries per message before the NIC gives up (a
    /// persistently-dead path is a fatal network error on QsNet).
    pub link_retry_limit: u32,
}

impl Default for ElanParams {
    fn default() -> Self {
        ElanParams {
            pio_issue: Dur::from_ns(300),
            nic_dispatch: Dur::from_ns(500),
            match_per_entry: Dur::from_ns(30),
            post_recv: Dur::from_ns(200),
            host_wakeup: Dur::from_ns(400),
            eager_threshold: 4096,
            hw_barrier: None,
            link_retry: Dur::from_us(1),
            link_retry_limit: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elan_host_costs_are_lower_than_ib() {
        let h = HcaParams::default();
        let e = ElanParams::default();
        // §3.3.4: Elan offloads MPI processing; host-side per-message
        // cost must be well below InfiniBand's.
        assert!(e.pio_issue < h.doorbell + h.wqe_engine);
        assert!(e.host_wakeup < h.poll_detect);
    }

    #[test]
    fn recovery_granularity_gap_is_orders_of_magnitude() {
        // The architectural claim behind the faults exhibit: IB's
        // end-to-end ACK timeout is vastly coarser than Elan's
        // link-level hardware retry.
        let h = HcaParams::default();
        let e = ElanParams::default();
        assert!(h.ack_timeout.as_ps() >= 100 * e.link_retry.as_ps());
    }

    #[test]
    fn reg_cache_fits_one_but_not_two_4mb_buffers() {
        let h = HcaParams::default();
        let four_mb = 4 * 1024 * 1024;
        assert!(h.reg_cache_bytes >= four_mb);
        assert!(h.reg_cache_bytes < 2 * four_mb);
    }
}
