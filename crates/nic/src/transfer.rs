//! The shared end-to-end transfer pipeline used by both NIC models.
//!
//! One wire message = source-side DMA (PCI-X share) ∥ wire traversal
//! (fabric reservation) ∥ destination-side DMA (PCI-X share), with the
//! destination DMA starting when the head of the message reaches the
//! destination port. The three stages overlap, so the end-to-end rate
//! of a long transfer is `min(PCI-X share, wire rate)` — which is how
//! both 2004 networks, nominally 1.0–1.3 GB/s on the wire, deliver
//! ~0.9 GB/s through a 133 MHz PCI-X slot (§4.1).
//!
//! Per-`(src,dst)` delivery order is enforced with a completion chain:
//! message *n+1*'s delivery callback never runs before message *n*'s.
//! Reliable-connection InfiniBand and Elan virtual channels both
//! guarantee this in hardware.

use elanib_simcore::FxHashMap;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use elanib_fabric::faults::FaultState;
use elanib_fabric::{Fabric, WireOutcome};
use elanib_nodesim::Node;
use elanib_simcore::{Dur, Flag, Sim, SimTime};

use crate::params::{ElanParams, HcaParams};

/// NIC-internal turnaround latency for loopback (intra-node) messages.
const LOOPBACK_TURNAROUND: elanib_simcore::Dur = elanib_simcore::Dur(300_000); // 300 ns

/// A transport-level failure surfaced by the recovery machinery —
/// the typed alternative to hanging when a fault plan kills a path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// IB RC: `retry_cnt` timeouts exhausted; the QP is in the error
    /// state and every later WQE on it flushes.
    RetryExceeded {
        src: usize,
        dst: usize,
        bytes: u64,
        attempts: u32,
    },
    /// IB RC: the receiver NAKed receiver-not-ready more than
    /// `rnr_retry` times.
    RnrRetryExceeded {
        src: usize,
        dst: usize,
        retries: u32,
    },
    /// Elan: the route stayed down (no detour existed) past the link
    /// retry limit.
    LinkDead { src: usize, dst: usize, waited: u32 },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::RetryExceeded {
                src,
                dst,
                bytes,
                attempts,
            } => write!(
                f,
                "retry_cnt exhausted after {attempts} attempts sending {bytes} B {src}->{dst}"
            ),
            TransportError::RnrRetryExceeded { src, dst, retries } => write!(
                f,
                "rnr_retry exhausted after {retries} RNR NAKs {src}->{dst}"
            ),
            TransportError::LinkDead { src, dst, waited } => write!(
                f,
                "link dead {src}->{dst} after waiting out {waited} outage windows"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

/// How a transport recovers from injected wire faults. Constructed
/// from the NIC parameter blocks so the recovery constants live next
/// to the rest of the calibration.
#[derive(Clone, Copy, Debug)]
pub enum RecoveryPolicy {
    /// IB reliable connection: whole-message retransmit on ACK
    /// timeout with exponential backoff, bounded retries, RNR NAKs.
    IbRc {
        ack_timeout: Dur,
        retry_cnt: u32,
        rnr_timer: Dur,
        rnr_retry: u32,
    },
    /// Elan-4: link-level per-packet hardware retry plus adaptive
    /// rerouting (handled inside the fabric attempt); a fully downed
    /// route is waited out, boundedly.
    ElanLink { link_retry: Dur, retry_limit: u32 },
}

impl RecoveryPolicy {
    pub fn ib(p: &HcaParams) -> RecoveryPolicy {
        RecoveryPolicy::IbRc {
            ack_timeout: p.ack_timeout,
            retry_cnt: p.retry_cnt,
            rnr_timer: p.rnr_timer,
            rnr_retry: p.rnr_retry,
        }
    }

    pub fn elan(p: &ElanParams) -> RecoveryPolicy {
        RecoveryPolicy::ElanLink {
            link_retry: p.link_retry,
            retry_limit: p.link_retry_limit,
        }
    }
}

/// Drive one message across a faulty fabric under `policy`, returning
/// the instant the last byte (including any retry penalty) is at the
/// destination port, or the typed error when recovery gives up.
///
/// Only called when a fault plan is active; the fault-free path in
/// [`launch`] goes straight to [`Fabric::deliver_at`].
async fn deliver_with_recovery(
    sim: &Sim,
    fabric: &Rc<Fabric>,
    fs: &Rc<FaultState>,
    src_ep: usize,
    dst_ep: usize,
    bytes: u64,
    policy: RecoveryPolicy,
) -> Result<SimTime, TransportError> {
    match policy {
        RecoveryPolicy::IbRc {
            ack_timeout,
            retry_cnt,
            rnr_timer,
            rnr_retry,
        } => {
            let first_sent = sim.now();
            let mut retries = 0u32;
            let mut rnr_taken = 0u32;
            loop {
                // A stalled sender NIC issues nothing until it recovers.
                if let Some(until) = fs.stall_until(src_ep, sim.now()) {
                    sim.sleep_until(until).await;
                }
                let sent_at = sim.now();
                let arrives = match fabric.deliver_attempt(sim, src_ep, dst_ep, bytes, false) {
                    // Static routing: a downed link on the route is
                    // indistinguishable from loss — the ACK never comes.
                    WireOutcome::LinkDown { .. } => None,
                    WireOutcome::Delivered {
                        arrives,
                        lost,
                        corrupted,
                        ..
                    } => {
                        // RC retransmits the *whole message* if any
                        // packet was lost or failed its ICRC.
                        if lost + corrupted > 0 {
                            None
                        } else {
                            Some(arrives)
                        }
                    }
                };
                if let Some(arrives) = arrives {
                    if fs.stall_until(dst_ep, arrives).is_some() {
                        // Receiver NIC stalled: RNR NAK, bounded.
                        if rnr_taken >= rnr_retry {
                            fs.note_qp_error();
                            if let Some(tr) = sim.tracer() {
                                tr.add("ib.qp_errors", 1);
                            }
                            return Err(TransportError::RnrRetryExceeded {
                                src: src_ep,
                                dst: dst_ep,
                                retries: rnr_taken,
                            });
                        }
                        rnr_taken += 1;
                        fs.note_rnr_nak();
                        if let Some(tr) = sim.tracer() {
                            tr.add("ib.rnr_naks", 1);
                        }
                        // Back off for the advertised RNR timer from
                        // the NAK's arrival, then retransmit. If the
                        // stall outlives the timer the next attempt
                        // NAKs again (still bounded by rnr_retry).
                        sim.sleep_until(arrives + rnr_timer).await;
                        continue;
                    }
                    if retries > 0 {
                        if let Some(tr) = sim.tracer() {
                            tr.span(
                                "fault",
                                "ib_retransmit",
                                first_sent.as_ps(),
                                arrives.as_ps(),
                                src_ep as u32,
                                retries as i64,
                            );
                        }
                    }
                    return Ok(arrives);
                }
                if retries >= retry_cnt {
                    fs.note_qp_error();
                    if let Some(tr) = sim.tracer() {
                        tr.add("ib.qp_errors", 1);
                    }
                    return Err(TransportError::RetryExceeded {
                        src: src_ep,
                        dst: dst_ep,
                        bytes,
                        attempts: retries + 1,
                    });
                }
                // Exponential backoff at ACK-timeout granularity:
                // timeout << retries, capped at 64x (IBTA's coarse
                // 4.096 µs × 2^n ladder has the same shape).
                let backoff = Dur(ack_timeout.as_ps() << retries.min(6));
                fs.note_ib_retransmit();
                if let Some(tr) = sim.tracer() {
                    tr.add("ib.retransmits", 1);
                }
                sim.sleep_until(sent_at + backoff).await;
                retries += 1;
            }
        }
        RecoveryPolicy::ElanLink {
            link_retry,
            retry_limit,
        } => {
            let mut waits = 0u32;
            loop {
                if let Some(until) = fs.stall_until(src_ep, sim.now()) {
                    sim.sleep_until(until).await;
                }
                match fabric.deliver_attempt(sim, src_ep, dst_ep, bytes, true) {
                    WireOutcome::LinkDown { until } => {
                        // No detour existed; the NIC keeps retrying at
                        // link granularity until the window clears.
                        if waits >= retry_limit {
                            return Err(TransportError::LinkDead {
                                src: src_ep,
                                dst: dst_ep,
                                waited: waits,
                            });
                        }
                        waits += 1;
                        fs.note_outage_wait();
                        if let Some(tr) = sim.tracer() {
                            tr.add("fault.outage_waits", 1);
                        }
                        sim.sleep_until(until).await;
                    }
                    WireOutcome::Delivered {
                        arrives,
                        lost,
                        corrupted,
                        ..
                    } => {
                        let bad = lost + corrupted;
                        let mut done = arrives;
                        if bad > 0 {
                            // Link-level hardware retry: each bad packet
                            // costs one turnaround plus its
                            // reserialization — microseconds, not an
                            // end-to-end timeout.
                            fs.note_elan_link_retries(bad);
                            if let Some(tr) = sim.tracer() {
                                tr.add("elan.link_retries", bad);
                            }
                            let pkt = bytes.min(fabric.params.link.mtu as u64).max(1);
                            let pkt_ser = fabric.params.link.serialize(pkt);
                            done = arrives + (link_retry + pkt_ser) * bad;
                            if let Some(tr) = sim.tracer() {
                                tr.span(
                                    "fault",
                                    "elan_link_retry",
                                    arrives.as_ps(),
                                    done.as_ps(),
                                    src_ep as u32,
                                    bad as i64,
                                );
                            }
                        }
                        if let Some(until) = fs.stall_until(dst_ep, done) {
                            done = until;
                        }
                        return Ok(done);
                    }
                }
            }
        }
    }
}

/// Per-source bookkeeping that keeps each `(src, dst)` message stream
/// in order.
#[derive(Default)]
pub struct PairChains {
    chains: RefCell<FxHashMap<usize, Flag>>,
}

impl PairChains {
    pub fn new() -> PairChains {
        PairChains::default()
    }

    /// Swap in a fresh tail flag for `dst`, returning the previous tail
    /// (which the new transfer must wait on before delivering).
    pub fn enqueue(&self, dst: usize) -> (Option<Flag>, Flag) {
        let mut c = self.chains.borrow_mut();
        let tail = Flag::new();
        let prev = c.insert(dst, tail.clone());
        (prev, tail)
    }
}

/// Launch one wire transfer. Returns immediately; the spawned pipeline
/// task performs the timed stages.
///
/// * `start_at` — instant the NIC engine injects the message (already
///   serialized by the caller's [`crate::common::SerialEngine`]).
/// * `local_done` — set when the source-side DMA has drained (the
///   send buffer is reusable). Set even on transport failure (flush
///   semantics: the buffer is always handed back).
/// * `prev`/`tail` — per-pair ordering chain from [`PairChains`].
/// * `policy` — the transport's recovery behaviour when a fault plan
///   is active (ignored, zero-cost, otherwise).
/// * `on_complete` — runs at the instant the last byte (and any
///   predecessor in the chain) has arrived at the destination port,
///   or when recovery gives up with a typed [`TransportError`].
#[allow(clippy::too_many_arguments)]
pub fn launch(
    sim: &Sim,
    fabric: &Rc<Fabric>,
    src_node: &Rc<Node>,
    dst_node: &Rc<Node>,
    src_ep: usize,
    dst_ep: usize,
    bytes: u64,
    start_at: SimTime,
    local_done: Flag,
    prev: Option<Flag>,
    tail: Flag,
    policy: RecoveryPolicy,
    on_complete: impl FnOnce(&Sim, Result<(), TransportError>) + 'static,
) {
    // Control messages still move a minimal packet.
    let wire_bytes = bytes.max(16);
    let sim2 = sim.clone();
    let fabric = fabric.clone();
    let src_node = src_node.clone();
    let dst_node = dst_node.clone();
    sim.spawn_fmt(
        format_args!("xfer {src_ep}->{dst_ep} ({bytes}B)"),
        async move {
            let sim = sim2;
            sim.sleep_until(start_at).await;
            // Per-transaction DMA setup before the source engine streams.
            sim.sleep(src_node.params.dma_setup).await;
            if src_ep == dst_ep {
                // NIC loopback (how both 2004 MPI stacks moved intra-node
                // messages by default): the payload crosses the shared
                // PCI-X bus twice — down to the NIC and back up — which is
                // exactly why 2 PPN communication is not free.
                if let Some(tr) = sim.tracer() {
                    tr.add("xfer.loopback", 1);
                }
                let f_down = src_node.pcix_start(&sim, wire_bytes);
                let f_up = src_node.pcix_start(&sim, wire_bytes);
                f_down.wait().await;
                local_done.set();
                f_up.wait().await;
                sim.sleep(LOOPBACK_TURNAROUND).await;
                if let Some(p) = prev {
                    p.wait().await;
                }
                on_complete(&sim, Ok(()));
                tail.set();
                return;
            }
            // Source DMA and wire reservation begin together (the HCA
            // streams from host memory onto the wire).
            let dma_start = sim.now();
            let f_src = src_node.pcix_start(&sim, wire_bytes);
            let wire_done = match fabric.faults() {
                // Fault-free hot path: identical to the pre-fault-layer
                // pipeline, one extra null check.
                None => fabric.deliver_at(&sim, src_ep, dst_ep, wire_bytes),
                Some(fs) => {
                    let fs = fs.clone();
                    match deliver_with_recovery(
                        &sim, &fabric, &fs, src_ep, dst_ep, wire_bytes, policy,
                    )
                    .await
                    {
                        Ok(t) => t,
                        Err(e) => {
                            // Failure flushes, it doesn't hang: the source
                            // DMA already ran (the wire attempt consumed
                            // the data), the send buffer comes back, and
                            // the pair chain keeps its order. Retransmit
                            // attempts are charged on the wire only — the
                            // PCI-X crossing is paid once (the HCA
                            // retransmits from its own staging).
                            f_src.wait().await;
                            local_done.set();
                            if let Some(p) = prev {
                                p.wait().await;
                            }
                            on_complete(&sim, Err(e));
                            tail.set();
                            return;
                        }
                    }
                }
            };
            let ser = fabric.params.link.serialize(wire_bytes);
            // When does the head reach the destination port?
            let head_at_dst = if wire_done.as_ps() > sim.now().as_ps() + ser.as_ps() {
                SimTime(wire_done.as_ps() - ser.as_ps())
            } else {
                sim.now()
            };
            // The destination-side DMA begins when the head arrives,
            // independent of the source DMA's completion — all three
            // stages overlap.
            let f_dst = Flag::new();
            {
                let (dst_node, f, s) = (dst_node.clone(), f_dst.clone(), sim.clone());
                let dst_setup = dst_node.params.dma_setup;
                sim.call_at(head_at_dst + dst_setup, move |_| {
                    dst_node.pcix_start_into(&s, wire_bytes, f);
                });
            }
            f_src.wait().await;
            if let Some(tr) = sim.tracer() {
                // Source-side DMA segment: dma_start → source PCI-X drain.
                tr.span(
                    "dma",
                    "src_dma",
                    dma_start.as_ps(),
                    sim.now().as_ps(),
                    src_ep as u32,
                    wire_bytes as i64,
                );
            }
            local_done.set();
            f_dst.wait().await;
            if let Some(tr) = sim.tracer() {
                // Destination-side DMA segment: head arrival → PCI-X drain.
                tr.span(
                    "dma",
                    "dst_dma",
                    head_at_dst.as_ps(),
                    sim.now().as_ps(),
                    dst_ep as u32,
                    wire_bytes as i64,
                );
            }
            sim.sleep_until(wire_done).await;
            if let Some(p) = prev {
                p.wait().await;
            }
            if let Some(tr) = sim.tracer() {
                // Whole wire traversal on the destination's lane.
                tr.span(
                    "xfer",
                    "wire",
                    dma_start.as_ps(),
                    wire_done.as_ps(),
                    dst_ep as u32,
                    wire_bytes as i64,
                );
            }
            on_complete(&sim, Ok(()));
            tail.set();
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use elanib_fabric::faults::FaultPlan;
    use elanib_fabric::{elan4, infiniband_4x, Topology};
    use elanib_nodesim::NodeParams;
    use std::cell::Cell;
    use std::sync::Arc;

    fn setup(n: usize) -> (Sim, Rc<Fabric>, Vec<Rc<Node>>) {
        let sim = Sim::new(1);
        let fabric = Rc::new(Fabric::new(Topology::single_crossbar(n), infiniband_4x()));
        let nodes = (0..n)
            .map(|i| Node::new(i, NodeParams::default()))
            .collect();
        (sim, fabric, nodes)
    }

    fn faulty_setup(n: usize, spec: &str) -> (Sim, Rc<Fabric>, Vec<Rc<Node>>) {
        let sim = Sim::new(1);
        let plan = Arc::new(FaultPlan::parse(spec).unwrap());
        let fabric = Rc::new(Fabric::with_faults(
            Topology::single_crossbar(n),
            infiniband_4x(),
            Some(plan),
        ));
        let nodes = (0..n)
            .map(|i| Node::new(i, NodeParams::default()))
            .collect();
        (sim, fabric, nodes)
    }

    fn ib_policy() -> RecoveryPolicy {
        RecoveryPolicy::ib(&HcaParams::default())
    }

    #[test]
    fn small_transfer_arrives_after_wire_latency() {
        let (sim, fabric, nodes) = setup(2);
        let arrived = Rc::new(Cell::new(0.0));
        let a = arrived.clone();
        let (p, t) = (None, Flag::new());
        launch(
            &sim,
            &fabric,
            &nodes[0],
            &nodes[1],
            0,
            1,
            64,
            sim.now(),
            Flag::new(),
            p,
            t,
            ib_policy(),
            move |s, r| {
                r.unwrap();
                a.set(s.now().as_us_f64());
            },
        );
        sim.run().unwrap();
        // Must include wire (ser + 2 prop + hop) and both PCI-X shares.
        assert!(
            arrived.get() > 0.2 && arrived.get() < 2.0,
            "{}",
            arrived.get()
        );
    }

    #[test]
    fn long_transfer_bandwidth_limited_by_pcix() {
        let (sim, fabric, nodes) = setup(2);
        let arrived = Rc::new(Cell::new(0.0));
        let a = arrived.clone();
        launch(
            &sim,
            &fabric,
            &nodes[0],
            &nodes[1],
            0,
            1,
            10_000_000,
            sim.now(),
            Flag::new(),
            None,
            Flag::new(),
            ib_policy(),
            move |s, r| {
                r.unwrap();
                a.set(s.now().as_us_f64());
            },
        );
        sim.run().unwrap();
        let bw = 10_000_000.0 / (arrived.get() * 1e-6);
        // PCI-X (0.95 GB/s) is the bottleneck, not the 1.0 GB/s wire.
        assert!(bw < 0.96e9, "bw={bw}");
        assert!(bw > 0.90e9, "bw={bw}");
    }

    #[test]
    fn local_done_precedes_delivery() {
        let (sim, fabric, nodes) = setup(2);
        let local = Flag::new();
        let local_t = Rc::new(Cell::new(0.0));
        let deliver_t = Rc::new(Cell::new(0.0));
        let (l2, lt, s2) = (local.clone(), local_t.clone(), sim.clone());
        sim.spawn("watch-local", async move {
            l2.wait().await;
            lt.set(s2.now().as_us_f64());
        });
        let d = deliver_t.clone();
        launch(
            &sim,
            &fabric,
            &nodes[0],
            &nodes[1],
            0,
            1,
            1_000_000,
            sim.now(),
            local,
            None,
            Flag::new(),
            ib_policy(),
            move |s, r| {
                r.unwrap();
                d.set(s.now().as_us_f64());
            },
        );
        sim.run().unwrap();
        assert!(local_t.get() > 0.0 && local_t.get() < deliver_t.get());
    }

    #[test]
    fn chain_preserves_pair_order_even_with_size_inversion() {
        let (sim, fabric, nodes) = setup(2);
        let chains = PairChains::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        // Big message first, tiny message second.
        for (i, bytes) in [(0u32, 4_000_000u64), (1, 16)] {
            let (prev, tail) = chains.enqueue(1);
            let o = order.clone();
            launch(
                &sim,
                &fabric,
                &nodes[0],
                &nodes[1],
                0,
                1,
                bytes,
                sim.now(),
                Flag::new(),
                prev,
                tail,
                ib_policy(),
                move |_, r| {
                    r.unwrap();
                    o.borrow_mut().push(i);
                },
            );
        }
        sim.run().unwrap();
        assert_eq!(*order.borrow(), vec![0, 1]);
    }

    #[test]
    fn two_nodes_sharing_pcix_halve_throughput() {
        // Send from node0 and node1 simultaneously into node2: the
        // receiver's PCI-X is shared, so each stream gets ~half.
        let (sim, fabric, nodes) = setup(3);
        let done = Rc::new(Cell::new(0u32));
        let end = Rc::new(Cell::new(0.0));
        for src in 0..2usize {
            let (d, e) = (done.clone(), end.clone());
            launch(
                &sim,
                &fabric,
                &nodes[src],
                &nodes[2],
                src,
                2,
                5_000_000,
                sim.now(),
                Flag::new(),
                None,
                Flag::new(),
                ib_policy(),
                move |s, r| {
                    r.unwrap();
                    d.set(d.get() + 1);
                    e.set(s.now().as_us_f64());
                },
            );
        }
        sim.run().unwrap();
        assert_eq!(done.get(), 2);
        let agg_bw = 10_000_000.0 / (end.get() * 1e-6);
        assert!(
            agg_bw < 0.96e9,
            "aggregate {agg_bw} must be capped by dst PCI-X"
        );
    }

    #[test]
    fn ib_backoff_schedule_is_pinned() {
        // A permanently-down link with retry_cnt = 2, ack = 100 µs:
        // attempts at +0, +100 µs, +300 µs (backoff 1x then 2x), then
        // the typed error at exactly (2^retry_cnt − 1) × ack_timeout
        // after the first attempt, with attempts = retry_cnt + 1.
        let (sim, fabric, nodes) = faulty_setup(2, "outage=link1@0+10s");
        let policy = RecoveryPolicy::IbRc {
            ack_timeout: Dur::from_us(100),
            retry_cnt: 2,
            rnr_timer: Dur::from_us(50),
            rnr_retry: 7,
        };
        let outcome = Rc::new(RefCell::new(None));
        let err_at = Rc::new(Cell::new(0u64));
        let local = Flag::new();
        let (o, e, l) = (outcome.clone(), err_at.clone(), local.clone());
        launch(
            &sim,
            &fabric,
            &nodes[0],
            &nodes[1],
            0,
            1,
            64,
            sim.now(),
            local,
            None,
            Flag::new(),
            policy,
            move |s, r| {
                assert!(l.is_set(), "flush must return the send buffer first");
                e.set(s.now().as_ps());
                *o.borrow_mut() = Some(r);
            },
        );
        sim.run().unwrap();
        let got = outcome.borrow_mut().take().expect("on_complete must run");
        assert_eq!(
            got,
            Err(TransportError::RetryExceeded {
                src: 0,
                dst: 1,
                bytes: 64,
                attempts: 3,
            })
        );
        let dma_setup = NodeParams::default().dma_setup;
        let first_attempt = SimTime::ZERO + dma_setup;
        assert_eq!(
            SimTime(err_at.get()),
            first_attempt + Dur::from_us(300),
            "error must land at (2^retry_cnt - 1) x ack_timeout"
        );
        assert_eq!(fabric.fault_stats().ib_retransmits, 2);
        assert_eq!(fabric.fault_stats().qp_errors, 1);
    }

    #[test]
    fn ib_recovers_when_outage_clears_inside_retry_budget() {
        // Outage covers the first two attempts; the third succeeds.
        let (sim, fabric, nodes) = faulty_setup(2, "outage=link1@0+250us");
        let policy = RecoveryPolicy::IbRc {
            ack_timeout: Dur::from_us(100),
            retry_cnt: 7,
            rnr_timer: Dur::from_us(50),
            rnr_retry: 7,
        };
        let done_at = Rc::new(Cell::new(0.0));
        let d = done_at.clone();
        launch(
            &sim,
            &fabric,
            &nodes[0],
            &nodes[1],
            0,
            1,
            64,
            sim.now(),
            Flag::new(),
            None,
            Flag::new(),
            policy,
            move |s, r| {
                r.unwrap();
                d.set(s.now().as_us_f64());
            },
        );
        sim.run().unwrap();
        // Third attempt goes out at first_attempt + 300 µs — the cliff:
        // a 250 µs outage costs ~300 µs because recovery quantizes to
        // the backoff ladder.
        assert!(done_at.get() > 300.0, "{}", done_at.get());
        assert_eq!(fabric.fault_stats().ib_retransmits, 2);
        assert_eq!(fabric.fault_stats().qp_errors, 0);
    }

    #[test]
    fn ib_rnr_nak_backs_off_and_recovers() {
        // Receiver NIC stalled for the first 50 µs: the first attempt
        // draws an RNR NAK, the retry after rnr_timer lands clear.
        let (sim, fabric, nodes) = faulty_setup(2, "stall=ep1@0+50us");
        let policy = RecoveryPolicy::IbRc {
            ack_timeout: Dur::from_us(100),
            retry_cnt: 7,
            rnr_timer: Dur::from_us(60),
            rnr_retry: 7,
        };
        let done_at = Rc::new(Cell::new(0.0));
        let d = done_at.clone();
        launch(
            &sim,
            &fabric,
            &nodes[0],
            &nodes[1],
            0,
            1,
            64,
            sim.now(),
            Flag::new(),
            None,
            Flag::new(),
            policy,
            move |s, r| {
                r.unwrap();
                d.set(s.now().as_us_f64());
            },
        );
        sim.run().unwrap();
        assert!(done_at.get() > 60.0, "{}", done_at.get());
        let st = fabric.fault_stats();
        assert_eq!(st.rnr_naks, 1);
        assert_eq!(st.ib_retransmits, 0);
    }

    #[test]
    fn elan_link_retry_penalty_is_per_packet_and_small() {
        // Every packet corrupt (corrupt=1): Elan still delivers, paying
        // one link turnaround + one packet reserialization per bad
        // packet — microseconds, vs IB's 100 µs timeout for the same
        // injected fault.
        let sim = Sim::new(1);
        let plan = Arc::new(FaultPlan::parse("corrupt=1").unwrap());
        let clean = Rc::new(Fabric::new(Topology::single_crossbar(2), elan4()));
        let faulty = Rc::new(Fabric::with_faults(
            Topology::single_crossbar(2),
            elan4(),
            Some(plan),
        ));
        let nodes: Vec<Rc<Node>> = (0..2)
            .map(|i| Node::new(i, NodeParams::default()))
            .collect();
        let policy = RecoveryPolicy::ElanLink {
            link_retry: Dur::from_us(1),
            retry_limit: 64,
        };
        let (t_clean, t_faulty) = (Rc::new(Cell::new(0.0)), Rc::new(Cell::new(0.0)));
        let c = t_clean.clone();
        launch(
            &sim,
            &clean,
            &nodes[0],
            &nodes[1],
            0,
            1,
            4096,
            sim.now(),
            Flag::new(),
            None,
            Flag::new(),
            policy,
            move |s, r| {
                r.unwrap();
                c.set(s.now().as_us_f64());
            },
        );
        let f = t_faulty.clone();
        launch(
            &sim,
            &faulty,
            &nodes[0],
            &nodes[1],
            0,
            1,
            4096,
            sim.now(),
            Flag::new(),
            None,
            Flag::new(),
            policy,
            move |s, r| {
                r.unwrap();
                f.set(s.now().as_us_f64());
            },
        );
        sim.run().unwrap();
        // 4096 B fits one MTU: 1 packet x 2 links = 2 bad packets;
        // each costs ~1 µs turnaround + ~3.2 µs of reserialization.
        let penalty = t_faulty.get() - t_clean.get();
        assert!(penalty > 4.0 && penalty < 25.0, "penalty {penalty} µs");
        assert_eq!(faulty.fault_stats().elan_link_retries, 2);
    }

    #[test]
    fn elan_waits_out_outage_on_only_path() {
        // A crossbar has no detour: Elan waits the window out and
        // delivers right after it clears — no timeout quantization.
        let sim = Sim::new(1);
        let plan = Arc::new(FaultPlan::parse("outage=link1@0+80us").unwrap());
        let fabric = Rc::new(Fabric::with_faults(
            Topology::single_crossbar(2),
            elan4(),
            Some(plan),
        ));
        let nodes: Vec<Rc<Node>> = (0..2)
            .map(|i| Node::new(i, NodeParams::default()))
            .collect();
        let policy = RecoveryPolicy::ElanLink {
            link_retry: Dur::from_us(1),
            retry_limit: 64,
        };
        let done_at = Rc::new(Cell::new(0.0));
        let d = done_at.clone();
        launch(
            &sim,
            &fabric,
            &nodes[0],
            &nodes[1],
            0,
            1,
            64,
            sim.now(),
            Flag::new(),
            None,
            Flag::new(),
            policy,
            move |s, r| {
                r.unwrap();
                d.set(s.now().as_us_f64());
            },
        );
        sim.run().unwrap();
        assert!(
            done_at.get() > 80.0 && done_at.get() < 90.0,
            "{}",
            done_at.get()
        );
        assert_eq!(fabric.fault_stats().outage_waits, 1);
    }

    #[test]
    fn elan_permanent_outage_surfaces_typed_error() {
        let sim = Sim::new(1);
        let plan = Arc::new(FaultPlan::parse("outage=link1@0+1s").unwrap());
        let fabric = Rc::new(Fabric::with_faults(
            Topology::single_crossbar(2),
            elan4(),
            Some(plan),
        ));
        let nodes: Vec<Rc<Node>> = (0..2)
            .map(|i| Node::new(i, NodeParams::default()))
            .collect();
        let policy = RecoveryPolicy::ElanLink {
            link_retry: Dur::from_us(1),
            retry_limit: 0,
        };
        let outcome = Rc::new(RefCell::new(None));
        let o = outcome.clone();
        launch(
            &sim,
            &fabric,
            &nodes[0],
            &nodes[1],
            0,
            1,
            64,
            sim.now(),
            Flag::new(),
            None,
            Flag::new(),
            policy,
            move |_, r| *o.borrow_mut() = Some(r),
        );
        sim.run().unwrap();
        assert_eq!(
            outcome.borrow_mut().take().unwrap(),
            Err(TransportError::LinkDead {
                src: 0,
                dst: 1,
                waited: 0,
            })
        );
    }
}
