//! The shared end-to-end transfer pipeline used by both NIC models.
//!
//! One wire message = source-side DMA (PCI-X share) ∥ wire traversal
//! (fabric reservation) ∥ destination-side DMA (PCI-X share), with the
//! destination DMA starting when the head of the message reaches the
//! destination port. The three stages overlap, so the end-to-end rate
//! of a long transfer is `min(PCI-X share, wire rate)` — which is how
//! both 2004 networks, nominally 1.0–1.3 GB/s on the wire, deliver
//! ~0.9 GB/s through a 133 MHz PCI-X slot (§4.1).
//!
//! Per-`(src,dst)` delivery order is enforced with a completion chain:
//! message *n+1*'s delivery callback never runs before message *n*'s.
//! Reliable-connection InfiniBand and Elan virtual channels both
//! guarantee this in hardware.

use std::cell::RefCell;
use elanib_simcore::FxHashMap;
use std::rc::Rc;

use elanib_fabric::Fabric;
use elanib_nodesim::Node;
use elanib_simcore::{Flag, Sim, SimTime};

/// NIC-internal turnaround latency for loopback (intra-node) messages.
const LOOPBACK_TURNAROUND: elanib_simcore::Dur = elanib_simcore::Dur(300_000); // 300 ns

/// Per-source bookkeeping that keeps each `(src, dst)` message stream
/// in order.
#[derive(Default)]
pub struct PairChains {
    chains: RefCell<FxHashMap<usize, Flag>>,
}

impl PairChains {
    pub fn new() -> PairChains {
        PairChains::default()
    }

    /// Swap in a fresh tail flag for `dst`, returning the previous tail
    /// (which the new transfer must wait on before delivering).
    pub fn enqueue(&self, dst: usize) -> (Option<Flag>, Flag) {
        let mut c = self.chains.borrow_mut();
        let tail = Flag::new();
        let prev = c.insert(dst, tail.clone());
        (prev, tail)
    }
}

/// Launch one wire transfer. Returns immediately; the spawned pipeline
/// task performs the timed stages.
///
/// * `start_at` — instant the NIC engine injects the message (already
///   serialized by the caller's [`crate::common::SerialEngine`]).
/// * `local_done` — set when the source-side DMA has drained (the
///   send buffer is reusable).
/// * `prev`/`tail` — per-pair ordering chain from [`PairChains`].
/// * `on_delivered` — runs at the instant the last byte (and any
///   predecessor in the chain) has arrived at the destination port.
#[allow(clippy::too_many_arguments)]
pub fn launch(
    sim: &Sim,
    fabric: &Rc<Fabric>,
    src_node: &Rc<Node>,
    dst_node: &Rc<Node>,
    src_ep: usize,
    dst_ep: usize,
    bytes: u64,
    start_at: SimTime,
    local_done: Flag,
    prev: Option<Flag>,
    tail: Flag,
    on_delivered: impl FnOnce(&Sim) + 'static,
) {
    // Control messages still move a minimal packet.
    let wire_bytes = bytes.max(16);
    let sim2 = sim.clone();
    let fabric = fabric.clone();
    let src_node = src_node.clone();
    let dst_node = dst_node.clone();
    sim.spawn(format!("xfer {src_ep}->{dst_ep} ({bytes}B)"), async move {
        let sim = sim2;
        sim.sleep_until(start_at).await;
        // Per-transaction DMA setup before the source engine streams.
        sim.sleep(src_node.params.dma_setup).await;
        if src_ep == dst_ep {
            // NIC loopback (how both 2004 MPI stacks moved intra-node
            // messages by default): the payload crosses the shared
            // PCI-X bus twice — down to the NIC and back up — which is
            // exactly why 2 PPN communication is not free.
            if let Some(tr) = sim.tracer() {
                tr.add("xfer.loopback", 1);
            }
            let f_down = src_node.pcix_start(&sim, wire_bytes);
            let f_up = src_node.pcix_start(&sim, wire_bytes);
            f_down.wait().await;
            local_done.set();
            f_up.wait().await;
            sim.sleep(LOOPBACK_TURNAROUND).await;
            if let Some(p) = prev {
                p.wait().await;
            }
            on_delivered(&sim);
            tail.set();
            return;
        }
        // Source DMA and wire reservation begin together (the HCA
        // streams from host memory onto the wire).
        let dma_start = sim.now();
        let f_src = src_node.pcix_start(&sim, wire_bytes);
        let wire_done = fabric.deliver_at(&sim, src_ep, dst_ep, wire_bytes);
        let ser = fabric.params.link.serialize(wire_bytes);
        // When does the head reach the destination port?
        let head_at_dst = if wire_done.as_ps() > sim.now().as_ps() + ser.as_ps() {
            SimTime(wire_done.as_ps() - ser.as_ps())
        } else {
            sim.now()
        };
        // The destination-side DMA begins when the head arrives,
        // independent of the source DMA's completion — all three
        // stages overlap.
        let f_dst = Flag::new();
        {
            let (dst_node, f, s) = (dst_node.clone(), f_dst.clone(), sim.clone());
            let dst_setup = dst_node.params.dma_setup;
            sim.call_at(head_at_dst + dst_setup, move |_| {
                dst_node.pcix_start_into(&s, wire_bytes, f);
            });
        }
        f_src.wait().await;
        if let Some(tr) = sim.tracer() {
            // Source-side DMA segment: dma_start → source PCI-X drain.
            tr.span(
                "dma",
                "src_dma",
                dma_start.as_ps(),
                sim.now().as_ps(),
                src_ep as u32,
                wire_bytes as i64,
            );
        }
        local_done.set();
        f_dst.wait().await;
        if let Some(tr) = sim.tracer() {
            // Destination-side DMA segment: head arrival → PCI-X drain.
            tr.span(
                "dma",
                "dst_dma",
                head_at_dst.as_ps(),
                sim.now().as_ps(),
                dst_ep as u32,
                wire_bytes as i64,
            );
        }
        sim.sleep_until(wire_done).await;
        if let Some(p) = prev {
            p.wait().await;
        }
        if let Some(tr) = sim.tracer() {
            // Whole wire traversal on the destination's lane.
            tr.span(
                "xfer",
                "wire",
                dma_start.as_ps(),
                wire_done.as_ps(),
                dst_ep as u32,
                wire_bytes as i64,
            );
        }
        on_delivered(&sim);
        tail.set();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use elanib_fabric::{infiniband_4x, Topology};
    use elanib_nodesim::NodeParams;
    use std::cell::Cell;

    fn setup(n: usize) -> (Sim, Rc<Fabric>, Vec<Rc<Node>>) {
        let sim = Sim::new(1);
        let fabric = Rc::new(Fabric::new(Topology::single_crossbar(n), infiniband_4x()));
        let nodes = (0..n).map(|i| Node::new(i, NodeParams::default())).collect();
        (sim, fabric, nodes)
    }

    #[test]
    fn small_transfer_arrives_after_wire_latency() {
        let (sim, fabric, nodes) = setup(2);
        let arrived = Rc::new(Cell::new(0.0));
        let a = arrived.clone();
        let (p, t) = (None, Flag::new());
        launch(
            &sim, &fabric, &nodes[0], &nodes[1], 0, 1, 64,
            sim.now(), Flag::new(), p, t,
            move |s| a.set(s.now().as_us_f64()),
        );
        sim.run().unwrap();
        // Must include wire (ser + 2 prop + hop) and both PCI-X shares.
        assert!(arrived.get() > 0.2 && arrived.get() < 2.0, "{}", arrived.get());
    }

    #[test]
    fn long_transfer_bandwidth_limited_by_pcix() {
        let (sim, fabric, nodes) = setup(2);
        let arrived = Rc::new(Cell::new(0.0));
        let a = arrived.clone();
        launch(
            &sim, &fabric, &nodes[0], &nodes[1], 0, 1, 10_000_000,
            sim.now(), Flag::new(), None, Flag::new(),
            move |s| a.set(s.now().as_us_f64()),
        );
        sim.run().unwrap();
        let bw = 10_000_000.0 / (arrived.get() * 1e-6);
        // PCI-X (0.95 GB/s) is the bottleneck, not the 1.0 GB/s wire.
        assert!(bw < 0.96e9, "bw={bw}");
        assert!(bw > 0.90e9, "bw={bw}");
    }

    #[test]
    fn local_done_precedes_delivery() {
        let (sim, fabric, nodes) = setup(2);
        let local = Flag::new();
        let local_t = Rc::new(Cell::new(0.0));
        let deliver_t = Rc::new(Cell::new(0.0));
        let (l2, lt, s2) = (local.clone(), local_t.clone(), sim.clone());
        sim.spawn("watch-local", async move {
            l2.wait().await;
            lt.set(s2.now().as_us_f64());
        });
        let d = deliver_t.clone();
        launch(
            &sim, &fabric, &nodes[0], &nodes[1], 0, 1, 1_000_000,
            sim.now(), local, None, Flag::new(),
            move |s| d.set(s.now().as_us_f64()),
        );
        sim.run().unwrap();
        assert!(local_t.get() > 0.0 && local_t.get() < deliver_t.get());
    }

    #[test]
    fn chain_preserves_pair_order_even_with_size_inversion() {
        let (sim, fabric, nodes) = setup(2);
        let chains = PairChains::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        // Big message first, tiny message second.
        for (i, bytes) in [(0u32, 4_000_000u64), (1, 16)] {
            let (prev, tail) = chains.enqueue(1);
            let o = order.clone();
            launch(
                &sim, &fabric, &nodes[0], &nodes[1], 0, 1, bytes,
                sim.now(), Flag::new(), prev, tail,
                move |_| o.borrow_mut().push(i),
            );
        }
        sim.run().unwrap();
        assert_eq!(*order.borrow(), vec![0, 1]);
    }

    #[test]
    fn two_nodes_sharing_pcix_halve_throughput() {
        // Send from node0 and node1 simultaneously into node2: the
        // receiver's PCI-X is shared, so each stream gets ~half.
        let (sim, fabric, nodes) = setup(3);
        let done = Rc::new(Cell::new(0u32));
        let end = Rc::new(Cell::new(0.0));
        for src in 0..2usize {
            let (d, e) = (done.clone(), end.clone());
            launch(
                &sim, &fabric, &nodes[src], &nodes[2], src, 2, 5_000_000,
                sim.now(), Flag::new(), None, Flag::new(),
                move |s| {
                    d.set(d.get() + 1);
                    e.set(s.now().as_us_f64());
                },
            );
        }
        sim.run().unwrap();
        assert_eq!(done.get(), 2);
        let agg_bw = 10_000_000.0 / (end.get() * 1e-6);
        assert!(agg_bw < 0.96e9, "aggregate {agg_bw} must be capped by dst PCI-X");
    }
}
