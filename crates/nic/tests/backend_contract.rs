//! Shared conformance suite for the N-way [`NicBackend`] contract:
//! every backend in the registry — host-matched verbs (`hca`), the
//! three CC-paced RoCEv2 modes, and NIC-matched Elan Tports — must
//! satisfy the same post/match/register/recover semantics, even though
//! the machinery underneath differs completely (host software match
//! queues vs the NIC thread processor, pin-down cache vs implicit MMU,
//! end-to-end retransmit vs link-level retry).
//!
//! The suite is deliberately backend-generic: each test iterates
//! `BackendKind::ALL`, so adding a backend to the registry opts it
//! into the whole contract with zero new test code.

use std::sync::Arc;

use elanib_fabric::faults::Outage;
use elanib_fabric::FaultPlan;
use elanib_nic::backend::{Arrival, BackendKind};
use elanib_nic::transfer::{RecoveryPolicy, TransportError};
use elanib_simcore::{Dur, Sim};

/// The recovery policy a backend reports must be coherent with its
/// failure semantics: end-to-end retransmit policies surface typed
/// errors, link-level ones are fatal past the retry limit.
#[test]
fn recovery_policy_matches_failure_semantics() {
    for kind in BackendKind::ALL {
        let bk = kind.build(2, 1, None);
        match bk.recovery() {
            RecoveryPolicy::IbRc { retry_cnt, .. } => {
                assert!(!bk.fatal_on_dead_path(), "{kind}: IbRc must be non-fatal");
                assert!(retry_cnt > 0, "{kind}: zero retry budget");
            }
            RecoveryPolicy::ElanLink { retry_limit, .. } => {
                assert!(bk.fatal_on_dead_path(), "{kind}: ElanLink must be fatal");
                assert!(retry_limit > 0, "{kind}: zero link-retry limit");
            }
        }
    }
}

/// Per-pair FIFO: same (src, dst) pair, same tag — wildcard receives
/// posted in order must complete with the messages in injection order,
/// whether matching runs in host software (verbs family) or on the NIC
/// thread (Elan).
#[test]
fn matching_is_fifo_per_pair() {
    for kind in BackendKind::ALL {
        let sim = Sim::new(11);
        let bk = kind.build(2, 1, None);
        let recvs: Vec<_> = (0..3).map(|_| bk.post_recv(&sim, 1, None, None)).collect();
        for bytes in [100u64, 200, 300] {
            bk.post(&sim, 0, 1, 7, bytes);
        }
        sim.run().unwrap();
        let got: Vec<u64> = recvs
            .iter()
            .map(|r| {
                assert!(r.done.is_set(), "{kind}: receive never completed");
                r.take().bytes
            })
            .collect();
        assert_eq!(got, vec![100, 200, 300], "{kind}: match order not FIFO");
    }
}

/// Selective matching over the unexpected queue: a tag-selective
/// receive posted *after* two arrivals must pick the matching message
/// (not the head of the queue), and a wildcard then drains the rest.
#[test]
fn late_selective_receive_matches_out_of_the_unexpected_queue() {
    for kind in BackendKind::ALL {
        let sim = Sim::new(12);
        let bk = kind.build(2, 1, None);
        bk.post(&sim, 0, 1, 1, 64);
        bk.post(&sim, 0, 1, 2, 128);
        let (bk2, sim2) = (bk.clone(), sim.clone());
        sim.spawn("late-post", async move {
            // Well past delivery of both eager messages.
            sim2.sleep(Dur::from_us(200)).await;
            let sel = bk2.post_recv(&sim2, 1, Some(0), Some(2));
            let any = bk2.post_recv(&sim2, 1, None, None);
            sel.done.wait().await;
            any.done.wait().await;
            assert_eq!(
                sel.take(),
                Arrival {
                    src: 0,
                    tag: 2,
                    bytes: 128
                },
                "selective receive must skip the non-matching head"
            );
            assert_eq!(
                any.take(),
                Arrival {
                    src: 0,
                    tag: 1,
                    bytes: 64
                }
            );
        });
        sim.run().unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

/// Wildcard-source receives match across senders; selective ones only
/// their named peer.
#[test]
fn source_wildcards_match_any_sender() {
    for kind in BackendKind::ALL {
        let sim = Sim::new(13);
        let bk = kind.build(3, 1, None);
        let from2 = bk.post_recv(&sim, 0, Some(2), None);
        let any = bk.post_recv(&sim, 0, None, None);
        bk.post(&sim, 1, 0, 5, 32);
        bk.post(&sim, 2, 0, 5, 48);
        sim.run().unwrap();
        assert_eq!(from2.take().src, 2, "{kind}: selective matched wrong src");
        assert_eq!(any.take().src, 1, "{kind}: wildcard missed rank 1");
    }
}

/// Registration contract: backends with a pin-down cache charge the
/// registration cost exactly once per resident region and expose
/// moving counters; implicit-MMU backends charge nothing and expose
/// none (`reg_stats() == None`).
#[test]
fn registration_cache_charges_once_per_region() {
    for kind in BackendKind::ALL {
        let sim = Sim::new(14);
        let bk = kind.build(2, 1, None);
        let first = bk.register(&sim, 0, 0xA0, 65_536);
        let again = bk.register(&sim, 0, 0xA0, 65_536);
        let other = bk.register(&sim, 0, 0xB0, 65_536);
        match bk.reg_stats() {
            Some((hits, misses, _evicts)) => {
                assert!(first > Dur::ZERO, "{kind}: first touch must pay pin-down");
                assert_eq!(again, Dur::ZERO, "{kind}: resident region re-charged");
                assert!(other > Dur::ZERO, "{kind}: distinct region not charged");
                assert!(hits >= 1, "{kind}: cache hit not counted");
                assert!(misses >= 2, "{kind}: cache misses not counted");
            }
            None => {
                // Implicit registration (Elan MMU, §3.3.2): free, and
                // no cache to report on.
                assert_eq!(first, Dur::ZERO, "{kind}: implicit backend charged");
                assert_eq!(again, Dur::ZERO);
                assert_eq!(other, Dur::ZERO);
            }
        }
    }
}

/// Recovery contract on a persistently dead path: non-fatal backends
/// (the verbs family, IB and RoCE alike) must complete the run, flush
/// the local flag, and surface a typed `RetryExceeded` on the handle;
/// fatal backends (QsNet) must panic once the link is declared dead —
/// never hang, never fail silently. Each family gets the plan that
/// actually kills it: total packet loss exhausts the IB retry budget,
/// while Elan's link layer absorbs any loss rate in hardware and only
/// dies when an outage covers every route past the link-retry limit.
#[test]
fn recovery_path_is_typed_or_fatal_never_silent() {
    let loss = Arc::new(FaultPlan::parse("loss=1,seed=3").unwrap());
    let mut all_down = FaultPlan {
        seed: 3,
        ..FaultPlan::default()
    };
    // Back-to-back 100 µs windows on every link (out-of-range indices
    // are inert): each cleared window the NIC waits out is one link
    // retry, and 70 > the 64-wait limit.
    for link in 0..32 {
        for w in 0..70u64 {
            all_down.outages.push(Outage {
                link,
                start: Dur::from_us(100 * w),
                dur: Dur::from_us(100),
            });
        }
    }
    let all_down = Arc::new(all_down);
    for kind in BackendKind::ALL {
        let sim = Sim::new(15);
        let fatal_probe = kind.build(2, 1, None).fatal_on_dead_path();
        let plan = if fatal_probe { &all_down } else { &loss };
        let bk = kind.build(2, 1, Some(plan.clone()));
        let h = bk.post(&sim, 0, 1, 1, 4096);
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()));
        if bk.fatal_on_dead_path() {
            assert!(
                run.is_err(),
                "{kind}: dead path is specified fatal but the run survived"
            );
        } else {
            run.unwrap_or_else(|_| panic!("{kind}: non-fatal backend panicked"))
                .unwrap();
            assert!(
                h.local.is_set(),
                "{kind}: local flag must flush on transport failure"
            );
            match h.error() {
                Some(TransportError::RetryExceeded { attempts, .. }) => {
                    assert!(attempts > 0, "{kind}: exhausted with zero attempts")
                }
                other => panic!("{kind}: expected RetryExceeded, got {other:?}"),
            }
        }
    }
}

/// A clean run never raises a transport error on any backend, and the
/// wire counters move.
#[test]
fn clean_runs_are_error_free_on_every_backend() {
    for kind in BackendKind::ALL {
        let sim = Sim::new(16);
        let bk = kind.build(4, 1, None);
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for dst in 1..4 {
            recvs.push(bk.post_recv(&sim, dst, Some(0), Some(dst as i64)));
            sends.push(bk.post(&sim, 0, dst, dst as i64, 2048));
        }
        sim.run().unwrap();
        for (i, s) in sends.iter().enumerate() {
            assert!(s.local.is_set(), "{kind}: send {i} never flushed");
            assert!(s.error().is_none(), "{kind}: spurious error on send {i}");
        }
        for (i, r) in recvs.iter().enumerate() {
            assert!(r.done.is_set(), "{kind}: recv {i} never completed");
        }
        assert!(bk.messages_sent() >= 3, "{kind}: wire counter stuck");
    }
}
