//! Property-based tests of the NIC models: the registration cache
//! against a reference LRU, and Tports matching against a reference
//! matcher, under random operation sequences.

use proptest::prelude::*;

use elanib_nic::{HcaParams, RegCache};
use elanib_simcore::Dur;
use std::collections::VecDeque;

/// Reference LRU model: same semantics as `RegCache`, written the
/// naive way.
struct RefLru {
    cap: u64,
    /// Front = LRU.
    entries: VecDeque<(u64, u64)>,
}

impl RefLru {
    fn register(&mut self, region: u64, len: u64) -> bool {
        // Hit if present with sufficient length.
        if let Some(i) = self
            .entries
            .iter()
            .position(|&(r, l)| r == region && l >= len)
        {
            let e = self.entries.remove(i).unwrap();
            self.entries.push_back(e);
            return true; // hit
        }
        if let Some(i) = self.entries.iter().position(|&(r, _)| r == region) {
            self.entries.remove(i);
        }
        let mut used: u64 = self.entries.iter().map(|&(_, l)| l).sum();
        while used + len > self.cap && !self.entries.is_empty() {
            let (_, l) = self.entries.pop_front().unwrap();
            used -= l;
        }
        self.entries.push_back((region, len));
        false // miss
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The production cache and the reference model agree on every
    /// hit/miss decision over random workloads.
    #[test]
    fn regcache_matches_reference_lru(
        cap_kb in 8u64..512,
        ops in prop::collection::vec((0u64..12, 1u64..200_000), 1..120),
    ) {
        let p = HcaParams::default();
        let cap = cap_kb * 1024;
        let mut real = RegCache::new(cap);
        let mut reference = RefLru { cap, entries: VecDeque::new() };
        for &(region, len) in &ops {
            let cost = real.register(&p, region, len);
            let hit_ref = reference.register(region, len);
            let hit_real = cost == Dur::ZERO;
            prop_assert_eq!(hit_real, hit_ref,
                "divergence on register({}, {})", region, len);
        }
        // Aggregate stats stay consistent.
        prop_assert_eq!(real.hits + real.misses, ops.len() as u64);
    }

    /// Miss costs are monotone in length (more pages = more pinning).
    #[test]
    fn miss_cost_monotone_in_length(a in 1u64..10_000_000, b in 1u64..10_000_000) {
        let p = HcaParams::default();
        let (small, large) = (a.min(b), a.max(b));
        let mut c1 = RegCache::new(1); // force misses
        let mut c2 = RegCache::new(1);
        let cost_small = c1.register(&p, 1, small);
        let cost_large = c2.register(&p, 1, large);
        prop_assert!(cost_large >= cost_small);
    }
}

mod tports_matching {
    use super::*;
    use elanib_fabric::{elan4, Fabric, Topology};
    use elanib_nic::{ElanNet, ElanParams, TportHeader, TportRecvHandle, TportSel};
    use elanib_nodesim::{Node, NodeParams};
    use elanib_simcore::Sim;
    use std::rc::Rc;

    /// Random mix of sends (src rank 0, to rank 1) and receives
    /// (posted at rank 1 with random selectors): every send must end
    /// up matched to the first compatible receive in MPI order,
    /// regardless of posting/arrival interleaving.
    ///
    /// We verify the weaker—but decisive—property that everything
    /// completes and payloads arrive intact under heavy wildcarding.
    #[derive(Debug, Clone)]
    pub enum Op {
        Send { tag: i64, val: u8, bytes: u64 },
        Recv { tag: Option<i64> },
    }

    pub fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0i64..4, any::<u8>(), 1u64..20_000).prop_map(|(tag, val, bytes)| Op::Send {
                tag,
                val,
                bytes
            }),
            prop_oneof![Just(None), (0i64..4).prop_map(Some)].prop_map(|tag| Op::Recv { tag }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_send_recv_schedules_complete(ops in prop::collection::vec(op_strategy(), 1..40)) {
            // Balance sends and receives so everything can complete.
            let sends: Vec<_> = ops.iter().filter_map(|o| match o {
                Op::Send { tag, val, bytes } => Some((*tag, *val, *bytes)),
                _ => None,
            }).collect();
            let mut recv_tags: Vec<Option<i64>> = ops.iter().filter_map(|o| match o {
                Op::Recv { tag } => Some(*tag),
                _ => None,
            }).collect();
            // Top up receives with wildcards to match the send count,
            // and drop extra selective receives that might never match.
            recv_tags.truncate(sends.len());
            while recv_tags.len() < sends.len() {
                recv_tags.push(None);
            }
            // Count feasibility: selective receives for tag t must not
            // exceed sends with tag t (else deadlock by construction).
            for t in 0..4i64 {
                let have = sends.iter().filter(|s| s.0 == t).count();
                let mut want = recv_tags.iter().filter(|r| **r == Some(t)).count();
                while want > have {
                    let i = recv_tags.iter().position(|r| *r == Some(t)).unwrap();
                    recv_tags[i] = None;
                    want -= 1;
                }
            }
            // Order feasibility: MPI matching is greedy in posted
            // order, so a wildcard posted before a selective receive
            // can steal the send the selective one needed (this is
            // *correct* MPI behaviour — the first run of this test
            // discovered it). Posting selectives first guarantees
            // completion.
            recv_tags.sort_by_key(|r| r.is_none());

            let sim = Sim::new(17);
            let nodes: Vec<_> = (0..2).map(|i| Node::new(i, NodeParams::default())).collect();
            let fabric = Rc::new(Fabric::new(Topology::single_crossbar(2), elan4()));
            let net = ElanNet::new(&nodes, fabric, 1, ElanParams::default());

            let mut handles: Vec<TportRecvHandle> = Vec::new();
            for tag in &recv_tags {
                handles.push(net.tport_post_recv(&sim, TportSel {
                    dst_rank: 1,
                    src: Some(0),
                    tag: *tag,
                    ctx: 0,
                }));
            }
            for &(tag, val, bytes) in &sends {
                let hdr = TportHeader { src_rank: 0, dst_rank: 1, tag, ctx: 0 };
                net.tport_send(&sim, hdr, Rc::new(vec![val; 4]), bytes);
            }
            sim.run().expect("schedule must complete without deadlock");
            // Every receive completed, and each carries a payload from
            // a send with a compatible tag.
            for (h, want_tag) in handles.iter().zip(&recv_tags) {
                prop_assert!(h.done.is_set(), "unmatched receive");
                let a = h.take();
                if let Some(t) = want_tag {
                    prop_assert_eq!(a.tag, *t);
                }
                prop_assert!(sends.iter().any(|&(t, v, b)|
                    t == a.tag && b == a.bytes && a.data.first() == Some(&v)));
            }
        }
    }
}
