//! Effective-bandwidth benchmark (b_eff) — Figure 1(d).
//!
//! Measures the aggregate communication bandwidth of the whole system,
//! not one link (§2.1): several message sizes and several communication
//! patterns (rings of different strides plus a random permutation),
//! averaged so that short messages dominate — "the logarithmic average
//! gives significantly greater weight to the shorter message lengths"
//! (§4.1). We use 21 geometrically spaced sizes from 1 B to 1 MB, so
//! two thirds of the sizes are ≤ 4 KB, reproducing that weighting.

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::collectives::{allreduce, barrier, Op};
use elanib_mpi::{
    bytes_of_f64, irecv, isend, waitall, Communicator, JobSpec, Network, RankProgram,
};

/// b_eff for one system size.
#[derive(Clone, Copy, Debug)]
pub struct BeffPoint {
    pub n_procs: usize,
    /// Aggregate effective bandwidth, MB/s.
    pub beff_mb_s: f64,
    /// Figure 1(d)'s y-axis: b_eff normalized per process.
    pub per_process_mb_s: f64,
}

/// The 21 geometrically spaced message sizes (1 B .. 1 MB).
pub fn beff_sizes() -> Vec<u64> {
    (0..21)
        .map(|k| (1_048_576f64.powf(k as f64 / 20.0)).round() as u64)
        .collect()
}

/// Communication patterns: each entry maps `rank -> partner to send
/// to`; receives come from the inverse. Rings of three strides plus a
/// deterministic pseudo-random permutation.
fn patterns(n: usize) -> Vec<Vec<usize>> {
    let mut pats = Vec::new();
    let mut strides = vec![1usize];
    if n > 4 {
        strides.push(2);
        strides.push(n / 2 - 1);
    }
    for d in strides {
        pats.push((0..n).map(|r| (r + d) % n).collect());
    }
    // Pseudo-random permutation from a fixed linear-congruential walk
    // (deterministic across networks so both see identical traffic).
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = 0x9E3779B97F4A7C15u64;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    // A permutation with fixed points degenerates into self-sends;
    // rotate those away.
    for i in 0..n {
        if perm[i] == i {
            let j = (i + 1) % n;
            perm.swap(i, j);
        }
    }
    pats.push(perm);
    pats
}

#[derive(Clone)]
struct Beff {
    iters: u32,
    out: Rc<Cell<f64>>,
}

impl RankProgram for Beff {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let sim = c.sim();
            let n = c.size();
            let me = c.rank();
            let sizes = beff_sizes();
            let pats = patterns(n);
            let mut pattern_avgs = Vec::new();
            for pat in &pats {
                let dst = pat[me];
                let src = pat.iter().position(|&d| d == me).unwrap();
                let mut sum_bw = 0.0;
                for &bytes in &sizes {
                    let payload = bytes_of_f64(&vec![0.0; (bytes as usize / 8).max(1)]);
                    barrier(&c).await;
                    let t0 = sim.now();
                    for it in 0..self.iters {
                        let tag = 100 + it as i64;
                        let rr = irecv(&c, Some(src), Some(tag)).await;
                        let sr = isend(&c, dst, tag, payload.clone(), bytes).await;
                        waitall(&c, vec![rr, sr]).await;
                    }
                    let local = sim.now().since(t0).as_secs_f64();
                    let worst = allreduce(&c, Op::Max, &[local]).await[0];
                    // All n processes moved `iters` messages of `bytes`.
                    sum_bw += (n as f64 * self.iters as f64 * bytes as f64) / worst / 1e6;
                }
                pattern_avgs.push(sum_bw / sizes.len() as f64);
            }
            let beff = pattern_avgs.iter().sum::<f64>() / pattern_avgs.len() as f64;
            if me == 0 {
                self.out.set(beff);
            }
        }
    }
}

/// Run b_eff on `nodes` nodes at `ppn` processes per node.
pub fn beff(network: Network, nodes: usize, ppn: usize, iters: u32) -> BeffPoint {
    elanib_core::simcache::get_or_compute("mb.beff", &(network, nodes, ppn, iters), || {
        let out = Rc::new(Cell::new(0.0));
        elanib_mpi::run_job(
            JobSpec {
                network,
                nodes,
                ppn,
                seed: 8,
            },
            Beff {
                iters,
                out: out.clone(),
            },
        );
        let n_procs = nodes * ppn;
        BeffPoint {
            n_procs,
            beff_mb_s: out.get(),
            per_process_mb_s: out.get() / n_procs as f64,
        }
    })
}

impl elanib_core::simcache::CacheValue for BeffPoint {
    fn encode(&self) -> Vec<u8> {
        use elanib_core::simcache::{put_f64, put_u64};
        let mut b = Vec::with_capacity(24);
        put_u64(&mut b, self.n_procs as u64);
        put_f64(&mut b, self.beff_mb_s);
        put_f64(&mut b, self.per_process_mb_s);
        b
    }

    fn decode(mut bytes: &[u8]) -> Option<Self> {
        use elanib_core::simcache::{take_f64, take_u64};
        let p = BeffPoint {
            n_procs: take_u64(&mut bytes)? as usize,
            beff_mb_s: take_f64(&mut bytes)?,
            per_process_mb_s: take_f64(&mut bytes)?,
        };
        bytes.is_empty().then_some(p)
    }
}

/// b_eff over a family of node counts (Figure 1(d)): one independent
/// job per count, fanned across the parallel sweep engine.
pub fn beff_sweep(
    network: Network,
    node_counts: &[usize],
    ppn: usize,
    iters: u32,
) -> Vec<BeffPoint> {
    elanib_core::sweep(node_counts, |&nodes| beff(network, nodes, ppn, iters))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_geometric_and_small_heavy() {
        let s = beff_sizes();
        assert_eq!(s.len(), 21);
        assert_eq!(s[0], 1);
        assert_eq!(s[20], 1_048_576);
        let below_4k = s.iter().filter(|&&x| x <= 4096).count();
        assert!(below_4k >= 12, "small messages must dominate: {below_4k}");
    }

    #[test]
    fn patterns_are_permutations_without_fixed_points() {
        for n in [2, 4, 8, 9, 32] {
            for p in patterns(n) {
                let mut seen = vec![false; n];
                for (i, &d) in p.iter().enumerate() {
                    assert!(d < n && !seen[d], "not a permutation at n={n}");
                    seen[d] = true;
                    assert_ne!(d, i, "fixed point at n={n}");
                }
            }
        }
    }

    #[test]
    fn beff_elan_beats_ib() {
        // Figure 1(d): the Elan-4 per-process line sits above IB's.
        let el = beff(Network::Elan4, 4, 1, 2);
        let ib = beff(Network::InfiniBand, 4, 1, 2);
        assert!(
            el.per_process_mb_s > ib.per_process_mb_s * 1.3,
            "elan {} vs ib {}",
            el.per_process_mb_s,
            ib.per_process_mb_s
        );
    }

    #[test]
    fn beff_is_dominated_by_small_messages() {
        // b_eff per process must be far below the peak link bandwidth
        // (§4.1: "the values of b_eff are low relative to peak
        // delivered bandwidths").
        let p = beff(Network::Elan4, 4, 1, 2);
        assert!(
            p.per_process_mb_s < 450.0,
            "b_eff should be small-message bound: {}",
            p.per_process_mb_s
        );
        assert!(p.per_process_mb_s > 20.0);
    }
}
