//! Fault-injected micro-benchmarks for the `faults` exhibit.
//!
//! The paper's §3.1 reliability argument in numbers: Quadrics detects
//! and retries a bad packet in the *link layer* (microseconds, per
//! packet), while InfiniBand's RC transport recovers end-to-end at ACK
//! -timeout granularity (hundreds of microseconds, whole message).
//! Under the same injected fault plan the two stacks therefore diverge
//! qualitatively: Elan degrades smoothly, IB latency cliffs — and past
//! `retry_cnt` the IB QP errors out entirely.
//!
//! Both points here run a *fault-configured* cluster built through
//! `with_config`, then read the fabric's fault counters back out. A
//! run that dies (IB QP error, Elan dead link, or a deadlock induced
//! by the fault plan) is caught and reported as a failed point with
//! `latency_us = -1.0` rather than killing the whole sweep.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Arc;

use elanib_fabric::{FaultPlan, FaultStats};
use elanib_mpi::tports::ElanWorld;
use elanib_mpi::verbs::IbWorld;
use elanib_mpi::{bytes_of_f64, recv, send, Communicator, NetConfig, Network, RankProgram};
use elanib_simcore::Sim;

/// One fault-injected measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPoint {
    pub bytes: u64,
    /// One-way latency (ping-pong) or total stream time in µs;
    /// `-1.0` when the run failed.
    pub latency_us: f64,
    /// Packets dropped by the injected plan.
    pub drops: u64,
    /// Recovery actions: IB whole-message retransmits, or Elan
    /// per-packet link-level retries — *not* comparable magnitudes,
    /// which is the point.
    pub retries: u64,
    /// Adaptive reroutes around downed links (Elan only; IB's static
    /// routes cannot detour).
    pub reroutes: u64,
    /// Outage windows waited out on a path with no detour.
    pub outage_waits: u64,
    /// The run panicked (QP error, dead link) or deadlocked.
    pub failed: bool,
}

impl elanib_core::simcache::CacheValue for FaultPoint {
    fn encode(&self) -> Vec<u8> {
        use elanib_core::simcache::{put_f64, put_u64};
        let mut b = Vec::with_capacity(56);
        put_u64(&mut b, self.bytes);
        put_f64(&mut b, self.latency_us);
        put_u64(&mut b, self.drops);
        put_u64(&mut b, self.retries);
        put_u64(&mut b, self.reroutes);
        put_u64(&mut b, self.outage_waits);
        put_u64(&mut b, self.failed as u64);
        b
    }

    fn decode(mut bytes: &[u8]) -> Option<Self> {
        use elanib_core::simcache::{take_f64, take_u64};
        let p = FaultPoint {
            bytes: take_u64(&mut bytes)?,
            latency_us: take_f64(&mut bytes)?,
            drops: take_u64(&mut bytes)?,
            retries: take_u64(&mut bytes)?,
            reroutes: take_u64(&mut bytes)?,
            outage_waits: take_u64(&mut bytes)?,
            failed: take_u64(&mut bytes)? != 0,
        };
        bytes.is_empty().then_some(p)
    }
}

/// Run `program` on a fault-configured cluster; returns the final
/// simulated time in µs (`None` on panic or deadlock) plus the
/// fabric's fault counters. The panic path is the *expected* outcome
/// for aggressive plans — IB surfaces exhausted retries as a typed QP
/// error, Elan surfaces a persistently dead link — so it is caught
/// here and turned into data.
fn run_faulty<P: RankProgram>(
    network: Network,
    nodes: usize,
    seed: u64,
    cfg: &NetConfig,
    program: P,
) -> (Option<f64>, FaultStats) {
    let sim = Sim::new(seed);
    match network {
        Network::InfiniBand | Network::RoceV2(_) => {
            let w = match network {
                Network::RoceV2(mode) => {
                    let rp = cfg
                        .roce
                        .unwrap_or_else(|| elanib_mpi::RoceParams::for_mode(mode));
                    IbWorld::with_config_roce(&sim, nodes, 1, cfg, rp)
                }
                _ => IbWorld::with_config(&sim, nodes, 1, cfg),
            };
            w.spawn_ranks("faultpt", move |c| program.clone().run(c));
            let t = catch_unwind(AssertUnwindSafe(|| sim.run()))
                .ok()
                .and_then(|r| r.ok())
                .map(|t| t.as_ps() as f64 / 1e6);
            (t, w.net.fabric.fault_stats())
        }
        Network::Elan4 => {
            let w = ElanWorld::with_config(&sim, nodes, 1, cfg);
            w.spawn_ranks("faultpt", move |c| program.clone().run(c));
            let t = catch_unwind(AssertUnwindSafe(|| sim.run()))
                .ok()
                .and_then(|r| r.ok())
                .map(|t| t.as_ps() as f64 / 1e6);
            (t, w.net.fabric.fault_stats())
        }
    }
}

fn cfg_with(plan: &Arc<FaultPlan>) -> NetConfig {
    NetConfig {
        faults: Some(plan.clone()),
        ..NetConfig::default()
    }
}

fn point_from(bytes: u64, network: Network, latency_us: Option<f64>, st: FaultStats) -> FaultPoint {
    FaultPoint {
        bytes,
        latency_us: latency_us.unwrap_or(-1.0),
        drops: st.drops,
        retries: match network {
            // RoCE rides the same verbs transport: drops surface as
            // IB-style retransmits.
            Network::InfiniBand | Network::RoceV2(_) => st.ib_retransmits,
            Network::Elan4 => st.elan_link_retries,
        },
        reroutes: st.reroutes,
        outage_waits: st.outage_waits,
        failed: latency_us.is_none(),
    }
}

#[derive(Clone)]
struct FaultPingPong {
    bytes: u64,
    iters: u32,
    out_us: Rc<Cell<f64>>,
}

impl RankProgram for FaultPingPong {
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let sim = c.sim();
            let payload = bytes_of_f64(&vec![0.0; (self.bytes as usize / 8).max(1)]);
            if c.rank() == 0 {
                let t0 = sim.now();
                for _ in 0..self.iters {
                    send(&c, 1, 1, payload.clone(), self.bytes).await;
                    let _ = recv(&c, Some(1), Some(2)).await;
                }
                let total = sim.now().since(t0).as_us_f64();
                self.out_us.set(total / (2.0 * self.iters as f64));
            } else if c.rank() == 1 {
                for _ in 0..self.iters {
                    let _ = recv(&c, Some(0), Some(1)).await;
                    send(&c, 0, 2, payload.clone(), self.bytes).await;
                }
            }
        }
    }
}

/// Ping-pong under an injected fault plan: mean one-way latency over
/// `iters` exchanges (no warm-up discard — under faults every exchange
/// is a sample of the recovery path).
pub fn fault_pingpong(
    network: Network,
    bytes: u64,
    iters: u32,
    plan: &Arc<FaultPlan>,
) -> FaultPoint {
    elanib_core::simcache::get_or_compute("mb.faultpp", &(network, bytes, iters, &**plan), || {
        let out = Rc::new(Cell::new(-1.0));
        let (t, st) = run_faulty(
            network,
            2,
            5,
            &cfg_with(plan),
            FaultPingPong {
                bytes,
                iters,
                out_us: out.clone(),
            },
        );
        // The per-exchange mean is the figure of merit; the run's
        // end time only gates success.
        point_from(bytes, network, t.map(|_| out.get()), st)
    })
}

#[derive(Clone)]
struct FaultStream {
    bytes: u64,
    msgs: u32,
    last: usize,
    out_us: Rc<Cell<f64>>,
}

impl RankProgram for FaultStream {
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let sim = c.sim();
            let payload = bytes_of_f64(&vec![0.0; (self.bytes as usize / 8).max(1)]);
            if c.rank() == 0 {
                for _ in 0..self.msgs {
                    send(&c, self.last, 1, payload.clone(), self.bytes).await;
                }
                let _ = recv(&c, Some(self.last), Some(2)).await;
                self.out_us.set(sim.now().as_us_f64());
            } else if c.rank() == self.last {
                for _ in 0..self.msgs {
                    let _ = recv(&c, Some(0), Some(1)).await;
                }
                send(&c, 0, 2, bytes_of_f64(&[0.0]), 8).await;
            }
        }
    }
}

/// Stream `msgs` messages across the full diameter of a 16-node fabric
/// (rank 0 → rank 15) under an injected plan, acknowledged once at the
/// end. With a link-outage plan on the static route this is where the
/// architectures split: Elan's adaptive routing detours around the
/// downed link, IB's static route stalls on timeout-paced retransmits.
pub fn outage_stream(network: Network, msgs: u32, bytes: u64, plan: &Arc<FaultPlan>) -> FaultPoint {
    elanib_core::simcache::get_or_compute(
        "mb.faultstream",
        &(network, msgs, bytes, &**plan),
        || {
            let nodes = 16;
            let out = Rc::new(Cell::new(-1.0));
            let (t, st) = run_faulty(
                network,
                nodes,
                5,
                &cfg_with(plan),
                FaultStream {
                    bytes,
                    msgs,
                    last: nodes - 1,
                    out_us: out.clone(),
                },
            );
            point_from(bytes, network, t.map(|_| out.get()), st)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(spec: &str) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::parse(spec).unwrap())
    }

    #[test]
    fn zero_rate_plan_matches_clean_pingpong() {
        // An all-zero plan is filtered to "no faults" at fabric build;
        // the numbers must equal the unfaulted benchmark exactly.
        for net in Network::BOTH {
            let clean = crate::pingpong(net, 4096, 20).latency_us;
            let p = fault_pingpong(net, 4096, 20, &plan("loss=0,seed=9"));
            assert!(!p.failed);
            assert_eq!(p.latency_us, clean, "{net}");
            assert_eq!(p.drops + p.retries + p.reroutes, 0);
        }
    }

    #[test]
    fn loss_slows_ib_more_than_elan() {
        // 2% per-packet loss: every IB recovery is a >=100 µs timeout,
        // every Elan recovery a ~µs link retry.
        let pl = plan("loss=0.02,seed=7");
        let ib = fault_pingpong(Network::InfiniBand, 4096, 30, &pl);
        let el = fault_pingpong(Network::Elan4, 4096, 30, &pl);
        assert!(!el.failed);
        let ib_clean = crate::pingpong(Network::InfiniBand, 4096, 30).latency_us;
        let el_clean = crate::pingpong(Network::Elan4, 4096, 30).latency_us;
        let el_added = el.latency_us - el_clean;
        assert!(
            (0.0..5.0).contains(&el_added),
            "Elan degrades by microseconds: +{el_added} µs"
        );
        if ib.failed {
            // Retry exhaustion is a legitimate (and telling) outcome.
            assert!(ib.retries > 0);
        } else {
            let ib_added = ib.latency_us - ib_clean;
            assert!(
                ib_added > 10.0 * el_added.max(0.1),
                "IB cliffs at timeout granularity: +{ib_added} µs vs elan +{el_added} µs"
            );
        }
    }

    #[test]
    fn outage_stream_is_deterministic() {
        let pl = plan("outage=link4@100us+1ms,seed=3");
        elanib_core::simcache::set_override(Some(elanib_core::simcache::Mode::Off));
        let a = outage_stream(Network::Elan4, 20, 65536, &pl);
        let b = outage_stream(Network::Elan4, 20, 65536, &pl);
        elanib_core::simcache::set_override(None);
        assert_eq!(a, b);
        assert!(!a.failed);
    }
}
