//! # elanib-microbench — the paper's micro-benchmarks
//!
//! Faithful reimplementations of the three §2.1 micro-benchmarks,
//! running on the simulated networks:
//!
//! * [`pingpong`] — Pallas-style ping-pong latency/bandwidth
//!   (Figure 1(a), (b), (c) ping-pong series)
//! * [`streaming`] — non-blocking back-to-back streaming after
//!   Liu et al. (Figure 1(b), (c) streaming series)
//! * [`beff`] — effective bandwidth of the whole system
//!   (Figure 1(d))
//! * [`reuse`] — the buffer re-use / registration-sensitivity study
//!   discussed in §3.3.2 (after Liu et al. \[11\])
//! * [`init_time`] — MPI_Init cost vs job size (the §3.3.1
//!   connectionless argument)
//!
//! Each module exposes a single-point measurement and a sweep; the
//! `elanib-bench` crate assembles them into the paper's figures.

pub mod beff;
pub mod faultpoint;
pub mod incast;
pub mod init_time;
pub mod pingpong;
pub mod reuse;
pub mod streaming;

pub use beff::{beff, beff_sizes, beff_sweep, BeffPoint};
pub use faultpoint::{fault_pingpong, outage_stream, FaultPoint};
pub use incast::{incast, small_allreduce_us, IncastPoint};
pub use init_time::{init_time, InitPoint};
pub use pingpong::{figure1_sizes, latency_sweep, pingpong, PingPongPoint};
pub use reuse::{pingpong_reuse, ReusePoint};
pub use streaming::{streaming, streaming_sweep, StreamingPoint};
