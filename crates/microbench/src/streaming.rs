//! Non-blocking streaming benchmark (Figure 1(b)–(c), streaming
//! series), after Liu et al. \[12\]: the sender transmits a predefined
//! number of back-to-back messages to a receiver that has **pre-posted**
//! a matching number of receives (§2.1). Quantifies the ability to fill
//! the message-passing pipeline.

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::{
    bytes_of_f64, irecv, isend, recv, send, waitall, Communicator, JobSpec, Network, RankProgram,
};

/// One point on the streaming curve.
#[derive(Clone, Copy, Debug)]
pub struct StreamingPoint {
    pub bytes: u64,
    pub bandwidth_mb_s: f64,
    pub msgs_per_sec: f64,
}

#[derive(Clone)]
struct Streaming {
    bytes: u64,
    count: u32,
    out_us_total: Rc<Cell<f64>>,
}

impl RankProgram for Streaming {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let sim = c.sim();
            let payload = bytes_of_f64(&vec![0.0; (self.bytes as usize / 8).max(1)]);
            if c.rank() == 0 {
                // Receiver signals that all receives are pre-posted.
                let _ = recv(&c, Some(1), Some(3)).await;
                let t0 = sim.now();
                let mut reqs = Vec::with_capacity(self.count as usize);
                for _ in 0..self.count {
                    reqs.push(isend(&c, 1, 1, payload.clone(), self.bytes).await);
                }
                waitall(&c, reqs).await;
                // Final ack bounds the measurement at full delivery.
                let _ = recv(&c, Some(1), Some(2)).await;
                self.out_us_total.set(sim.now().since(t0).as_us_f64());
            } else if c.rank() == 1 {
                let mut reqs = Vec::with_capacity(self.count as usize);
                for _ in 0..self.count {
                    reqs.push(irecv(&c, Some(0), Some(1)).await);
                }
                send(&c, 0, 3, payload.clone(), 8).await;
                waitall(&c, reqs).await;
                send(&c, 0, 2, payload.clone(), 8).await;
            }
        }
    }
}

/// Measure one streaming point between two nodes (1 PPN).
pub fn streaming(network: Network, bytes: u64, count: u32) -> StreamingPoint {
    elanib_core::simcache::get_or_compute("mb.streaming", &(network, bytes, count), || {
        let out = Rc::new(Cell::new(0.0));
        elanib_mpi::run_job(
            JobSpec {
                network,
                nodes: 2,
                ppn: 1,
                seed: 6,
            },
            Streaming {
                bytes,
                count,
                out_us_total: out.clone(),
            },
        );
        let secs = out.get() * 1e-6;
        StreamingPoint {
            bytes,
            bandwidth_mb_s: (bytes as f64 * count as f64) / secs / 1e6,
            msgs_per_sec: count as f64 / secs,
        }
    })
}

impl elanib_core::simcache::CacheValue for StreamingPoint {
    fn encode(&self) -> Vec<u8> {
        use elanib_core::simcache::{put_f64, put_u64};
        let mut b = Vec::with_capacity(24);
        put_u64(&mut b, self.bytes);
        put_f64(&mut b, self.bandwidth_mb_s);
        put_f64(&mut b, self.msgs_per_sec);
        b
    }

    fn decode(mut bytes: &[u8]) -> Option<Self> {
        use elanib_core::simcache::{take_f64, take_u64};
        let p = StreamingPoint {
            bytes: take_u64(&mut bytes)?,
            bandwidth_mb_s: take_f64(&mut bytes)?,
            msgs_per_sec: take_f64(&mut bytes)?,
        };
        bytes.is_empty().then_some(p)
    }
}

/// Sweep the streaming curve. Each size is an independent simulation,
/// fanned across the parallel sweep engine.
pub fn streaming_sweep(network: Network, sizes: &[u64], count: u32) -> Vec<StreamingPoint> {
    elanib_core::sweep(sizes, |&b| streaming(network, b, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_beats_pingpong_bandwidth_at_small_sizes() {
        // Pipelining must help when messages are small.
        for net in Network::BOTH {
            let st = streaming(net, 1024, 200).bandwidth_mb_s;
            let pp = crate::pingpong::pingpong(net, 1024, 50).bandwidth_mb_s;
            assert!(st > pp * 1.5, "{net}: streaming {st} vs pingpong {pp}");
        }
    }

    #[test]
    fn elan_streaming_advantage_is_large_at_small_sizes() {
        // Figure 1(c): "At small message sizes, Elan-4 achieves over a
        // factor of five advantage using the streaming benchmark."
        let el = streaming(Network::Elan4, 64, 400).bandwidth_mb_s;
        let ib = streaming(Network::InfiniBand, 64, 400).bandwidth_mb_s;
        let ratio = el / ib;
        assert!(ratio > 3.5, "streaming ratio at 64B: {ratio}");
    }

    #[test]
    fn streaming_converges_to_wire_rate_at_large_sizes() {
        for net in Network::BOTH {
            let bw = streaming(net, 1 << 20, 12).bandwidth_mb_s;
            assert!(bw > 750.0 && bw < 960.0, "{net}: {bw}");
        }
    }

    #[test]
    fn message_rate_declines_with_size() {
        let small = streaming(Network::Elan4, 8, 300).msgs_per_sec;
        let large = streaming(Network::Elan4, 65536, 50).msgs_per_sec;
        assert!(small > large * 5.0);
    }
}
