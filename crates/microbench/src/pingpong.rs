//! Pallas-style ping-pong (Figure 1(a)–(c), ping-pong series).
//!
//! Two processes, one message outstanding; the sender measures total
//! round-trip time over many exchanges, and latency is half the average
//! round trip (§2.1).

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::{bytes_of_f64, recv, send, Communicator, JobSpec, Network, RankProgram};

/// One point on the ping-pong curves.
#[derive(Clone, Copy, Debug)]
pub struct PingPongPoint {
    pub bytes: u64,
    /// One-way latency in microseconds.
    pub latency_us: f64,
    /// `bytes / latency`, in MB/s (decimal).
    pub bandwidth_mb_s: f64,
}

#[derive(Clone)]
struct PingPong {
    bytes: u64,
    iters: u32,
    /// One-way latency in µs, written by rank 0.
    out_us: Rc<Cell<f64>>,
}

impl RankProgram for PingPong {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let sim = c.sim();
            let payload = bytes_of_f64(&vec![0.0; (self.bytes as usize / 8).max(1)]);
            // Warm-up exchange: connection paths, registration caches.
            // (Pallas also discards warm-up iterations.)
            if c.rank() == 0 {
                send(&c, 1, 0, payload.clone(), self.bytes).await;
                let _ = recv(&c, Some(1), Some(0)).await;
                let t0 = sim.now();
                for _ in 0..self.iters {
                    send(&c, 1, 1, payload.clone(), self.bytes).await;
                    let _ = recv(&c, Some(1), Some(2)).await;
                }
                let total = sim.now().since(t0).as_us_f64();
                self.out_us.set(total / (2.0 * self.iters as f64));
            } else if c.rank() == 1 {
                let _ = recv(&c, Some(0), Some(0)).await;
                send(&c, 0, 0, payload.clone(), self.bytes).await;
                for _ in 0..self.iters {
                    let _ = recv(&c, Some(0), Some(1)).await;
                    send(&c, 0, 2, payload.clone(), self.bytes).await;
                }
            }
        }
    }
}

/// Measure one ping-pong point between two nodes (1 PPN).
pub fn pingpong(network: Network, bytes: u64, iters: u32) -> PingPongPoint {
    elanib_core::simcache::get_or_compute("mb.pingpong", &(network, bytes, iters), || {
        let out = Rc::new(Cell::new(0.0));
        run_pair(
            network,
            PingPong {
                bytes,
                iters,
                out_us: out.clone(),
            },
        );
        let latency_us = out.get();
        PingPongPoint {
            bytes,
            latency_us,
            bandwidth_mb_s: if latency_us > 0.0 {
                bytes as f64 / (latency_us * 1e-6) / 1e6
            } else {
                0.0
            },
        }
    })
}

impl elanib_core::simcache::CacheValue for PingPongPoint {
    fn encode(&self) -> Vec<u8> {
        use elanib_core::simcache::{put_f64, put_u64};
        let mut b = Vec::with_capacity(24);
        put_u64(&mut b, self.bytes);
        put_f64(&mut b, self.latency_us);
        put_f64(&mut b, self.bandwidth_mb_s);
        b
    }

    fn decode(mut bytes: &[u8]) -> Option<Self> {
        use elanib_core::simcache::{take_f64, take_u64};
        let p = PingPongPoint {
            bytes: take_u64(&mut bytes)?,
            latency_us: take_f64(&mut bytes)?,
            bandwidth_mb_s: take_f64(&mut bytes)?,
        };
        bytes.is_empty().then_some(p)
    }
}

fn run_pair<P: RankProgram>(network: Network, p: P) {
    elanib_mpi::run_job(
        JobSpec {
            network,
            nodes: 2,
            ppn: 1,
            seed: 5,
        },
        p,
    );
}

/// The message sizes of Figure 1 (log-2 spaced, 4 bytes to 4 MiB).
pub fn figure1_sizes() -> Vec<u64> {
    let mut v = vec![0, 4];
    let mut s = 8u64;
    while s <= 4 * 1024 * 1024 {
        v.push(s);
        s *= 2;
    }
    v
}

/// Sweep the full latency/bandwidth curve. Each size is an independent
/// two-rank simulation, fanned across the parallel sweep engine.
pub fn latency_sweep(network: Network, sizes: &[u64], iters: u32) -> Vec<PingPongPoint> {
    elanib_core::sweep(sizes, |&b| pingpong(network, b, iters))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_monotone_in_size_per_protocol() {
        // Within one protocol regime latency rises with size.
        for net in Network::BOTH {
            let a = pingpong(net, 8, 40).latency_us;
            let b = pingpong(net, 512, 40).latency_us;
            let c = pingpong(net, 65536, 20).latency_us;
            assert!(a <= b && b < c, "{net}: {a} {b} {c}");
        }
    }

    #[test]
    fn zero_byte_message_works() {
        let p = pingpong(Network::Elan4, 0, 20);
        assert!(p.latency_us > 1.0 && p.latency_us < 5.0);
    }

    #[test]
    fn figure1_sizes_span_the_paper_range() {
        let s = figure1_sizes();
        assert_eq!(*s.first().unwrap(), 0);
        assert_eq!(*s.last().unwrap(), 4 * 1024 * 1024);
        assert!(s.len() > 18);
    }

    #[test]
    fn elan_beats_ib_at_every_size() {
        for bytes in [8u64, 1024, 8192, 262_144] {
            let ib = pingpong(Network::InfiniBand, bytes, 20).latency_us;
            let el = pingpong(Network::Elan4, bytes, 20).latency_us;
            assert!(el < ib, "{bytes}B: elan {el} vs ib {ib}");
        }
    }
}
