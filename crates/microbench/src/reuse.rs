//! Buffer re-use ping-pong — the §3.3.2 experiment (after Liu et al.
//! \[11\]): vary the percentage of iterations that re-use the same
//! message buffer. Explicit-registration networks slow down when
//! buffers are fresh (every registration misses the pin-down cache);
//! implicit-registration networks don't care. Below the eager
//! threshold, copy blocks ("bounce buffers") hide registration on
//! InfiniBand too — which is exactly why \[11\]'s curves were flat below
//! 16 KB for MPICH/GM.

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::{bytes_of_f64, Communicator, JobSpec, Network, RankProgram, CTX_WORLD};

/// One point of the re-use study.
#[derive(Clone, Copy, Debug)]
pub struct ReusePoint {
    pub bytes: u64,
    /// Percentage of iterations re-using the hot buffer (0-100).
    pub reuse_pct: u32,
    pub latency_us: f64,
    pub bandwidth_mb_s: f64,
}

#[derive(Clone)]
struct ReusePingPong {
    bytes: u64,
    reuse_pct: u32,
    iters: u32,
    out_us: Rc<Cell<f64>>,
}

impl ReusePingPong {
    /// Buffer identity for iteration `i`: the hot buffer for the first
    /// `reuse_pct`% of each 10-iteration window (10% granularity, so
    /// short runs still sample the mix), a fresh buffer otherwise.
    /// Deterministic and identical on both ranks.
    fn region(&self, dir: u64, i: u32) -> u64 {
        if (i % 10) * 10 < self.reuse_pct {
            dir << 60
        } else {
            (dir << 60) | (1_000_000 + i as u64)
        }
    }
}

impl RankProgram for ReusePingPong {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let sim = c.sim();
            let payload = bytes_of_f64(&vec![0.0; (self.bytes as usize / 8).max(1)]);
            let me = c.rank();
            if me == 0 {
                let t0 = sim.now();
                for i in 0..self.iters {
                    let sr = c
                        .isend_full(
                            1,
                            1,
                            CTX_WORLD,
                            payload.clone(),
                            self.bytes,
                            self.region(1, i),
                        )
                        .await;
                    c.wait(sr).await;
                    let rr = c
                        .irecv_full(Some(1), Some(2), CTX_WORLD, self.region(2, i))
                        .await;
                    c.wait(rr).await;
                }
                let total = sim.now().since(t0).as_us_f64();
                self.out_us.set(total / (2.0 * self.iters as f64));
            } else if me == 1 {
                for i in 0..self.iters {
                    let rr = c
                        .irecv_full(Some(0), Some(1), CTX_WORLD, self.region(3, i))
                        .await;
                    c.wait(rr).await;
                    let sr = c
                        .isend_full(
                            0,
                            2,
                            CTX_WORLD,
                            payload.clone(),
                            self.bytes,
                            self.region(4, i),
                        )
                        .await;
                    c.wait(sr).await;
                }
            }
        }
    }
}

/// Measure one re-use point between two nodes (1 PPN).
pub fn pingpong_reuse(network: Network, bytes: u64, reuse_pct: u32, iters: u32) -> ReusePoint {
    assert!(reuse_pct <= 100);
    elanib_core::simcache::get_or_compute("mb.reuse", &(network, bytes, reuse_pct, iters), || {
        let out = Rc::new(Cell::new(0.0));
        elanib_mpi::run_job(
            JobSpec {
                network,
                nodes: 2,
                ppn: 1,
                seed: 13,
            },
            ReusePingPong {
                bytes,
                reuse_pct,
                iters,
                out_us: out.clone(),
            },
        );
        let latency_us = out.get();
        ReusePoint {
            bytes,
            reuse_pct,
            latency_us,
            bandwidth_mb_s: bytes as f64 / (latency_us * 1e-6) / 1e6,
        }
    })
}

impl elanib_core::simcache::CacheValue for ReusePoint {
    fn encode(&self) -> Vec<u8> {
        use elanib_core::simcache::{put_f64, put_u64};
        let mut b = Vec::with_capacity(32);
        put_u64(&mut b, self.bytes);
        put_u64(&mut b, self.reuse_pct as u64);
        put_f64(&mut b, self.latency_us);
        put_f64(&mut b, self.bandwidth_mb_s);
        b
    }

    fn decode(mut bytes: &[u8]) -> Option<Self> {
        use elanib_core::simcache::{take_f64, take_u64};
        let p = ReusePoint {
            bytes: take_u64(&mut bytes)?,
            reuse_pct: take_u64(&mut bytes)? as u32,
            latency_us: take_f64(&mut bytes)?,
            bandwidth_mb_s: take_f64(&mut bytes)?,
        };
        bytes.is_empty().then_some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ib_large_messages_are_reuse_sensitive() {
        // §3.3.2: "both InfiniBand and Quadrics Elan-3 are sensitive to
        // memory registration costs" — our Elan-4 model has the MMU,
        // so only InfiniBand should care.
        let hot = pingpong_reuse(Network::InfiniBand, 256 * 1024, 100, 20);
        let cold = pingpong_reuse(Network::InfiniBand, 256 * 1024, 0, 20);
        assert!(
            cold.latency_us > hot.latency_us * 1.15,
            "fresh buffers must pay registration: hot {} vs cold {}",
            hot.latency_us,
            cold.latency_us
        );
    }

    #[test]
    fn ib_small_messages_hidden_by_copy_blocks() {
        // Below the eager threshold the payload is copied through
        // pre-registered buffers, so re-use does not matter — the flat
        // region of \[11\]'s curves.
        let hot = pingpong_reuse(Network::InfiniBand, 512, 100, 40);
        let cold = pingpong_reuse(Network::InfiniBand, 512, 0, 40);
        let ratio = cold.latency_us / hot.latency_us;
        assert!(
            (0.98..1.05).contains(&ratio),
            "eager path must be reuse-insensitive: {ratio}"
        );
    }

    #[test]
    fn elan_is_reuse_insensitive_at_all_sizes() {
        for bytes in [512u64, 256 * 1024] {
            let hot = pingpong_reuse(Network::Elan4, bytes, 100, 20);
            let cold = pingpong_reuse(Network::Elan4, bytes, 0, 20);
            let ratio = cold.latency_us / hot.latency_us;
            assert!(
                (0.98..1.03).contains(&ratio),
                "implicit registration must be reuse-insensitive at {bytes}B: {ratio}"
            );
        }
    }

    #[test]
    fn sensitivity_scales_with_reuse_percentage() {
        let l0 = pingpong_reuse(Network::InfiniBand, 256 * 1024, 0, 20).latency_us;
        let l50 = pingpong_reuse(Network::InfiniBand, 256 * 1024, 50, 20).latency_us;
        let l100 = pingpong_reuse(Network::InfiniBand, 256 * 1024, 100, 20).latency_us;
        assert!(l0 > l50 && l50 > l100, "{l0} > {l50} > {l100} expected");
    }
}
