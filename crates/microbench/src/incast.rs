//! RoCE-study workloads (EXTENSION): incast streaming and
//! small-message allreduce vs node count.
//!
//! The incast pattern — every rank streams to rank 0 simultaneously —
//! is the canonical congestion-control stressor: all senders share the
//! receiver's downlink regardless of how the fat tree routes, so the
//! measured aggregate bandwidth is a direct read on how gracefully the
//! transport shares a saturated link. Native InfiniBand's credit-based
//! link-level flow control handles it natively; the RoCEv2 modes show
//! their PFC pause-storm / DCQCN rate-limiter behaviour here.

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::collectives::{allreduce, Op};
use elanib_mpi::{
    bytes_of_f64, irecv, isend, recv, send, waitall, Communicator, JobSpec, Network, RankProgram,
};

/// One point on an incast curve.
#[derive(Clone, Copy, Debug)]
pub struct IncastPoint {
    pub nodes: usize,
    /// Aggregate delivered bandwidth at the sink, MB/s.
    pub bandwidth_mb_s: f64,
}

#[derive(Clone)]
struct Incast {
    bytes: u64,
    count: u32,
    out_us: Rc<Cell<f64>>,
}

impl RankProgram for Incast {
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let sim = c.sim();
            let n = c.size();
            let payload = bytes_of_f64(&vec![0.0; (self.bytes as usize / 8).max(1)]);
            if c.rank() == 0 {
                // Pre-post every receive (wildcard source: the arrival
                // order under congestion is the experiment), then
                // release the senders and time to full delivery.
                let total = (n - 1) * self.count as usize;
                let mut reqs = Vec::with_capacity(total);
                for _ in 0..total {
                    reqs.push(irecv(&c, None, Some(1)).await);
                }
                for s in 1..n {
                    send(&c, s, 3, payload.clone(), 8).await;
                }
                let t0 = sim.now();
                waitall(&c, reqs).await;
                self.out_us.set(sim.now().since(t0).as_us_f64());
            } else {
                let _ = recv(&c, Some(0), Some(3)).await;
                // Non-blocking burst: every sender pushes its whole
                // window at once, so the sink's downlink sees the full
                // offered load — the congestion the CC modes exist for.
                let mut reqs = Vec::with_capacity(self.count as usize);
                for _ in 0..self.count {
                    reqs.push(isend(&c, 0, 1, payload.clone(), self.bytes).await);
                }
                waitall(&c, reqs).await;
            }
        }
    }
}

/// Measure one incast point: `nodes - 1` senders each stream `count`
/// messages of `bytes` to rank 0 (1 PPN).
pub fn incast(network: Network, nodes: usize, bytes: u64, count: u32) -> IncastPoint {
    elanib_core::simcache::get_or_compute("mb.incast", &(network, nodes, bytes, count), || {
        let out = Rc::new(Cell::new(0.0));
        elanib_mpi::run_job(
            JobSpec {
                network,
                nodes,
                ppn: 1,
                seed: 9,
            },
            Incast {
                bytes,
                count,
                out_us: out.clone(),
            },
        );
        let secs = out.get() * 1e-6;
        IncastPoint {
            nodes,
            bandwidth_mb_s: (bytes as f64 * count as f64 * (nodes - 1) as f64) / secs / 1e6,
        }
    })
}

impl elanib_core::simcache::CacheValue for IncastPoint {
    fn encode(&self) -> Vec<u8> {
        use elanib_core::simcache::{put_f64, put_u64};
        let mut b = Vec::with_capacity(16);
        put_u64(&mut b, self.nodes as u64);
        put_f64(&mut b, self.bandwidth_mb_s);
        b
    }

    fn decode(mut bytes: &[u8]) -> Option<Self> {
        use elanib_core::simcache::{take_f64, take_u64};
        let p = IncastPoint {
            nodes: take_u64(&mut bytes)? as usize,
            bandwidth_mb_s: take_f64(&mut bytes)?,
        };
        bytes.is_empty().then_some(p)
    }
}

#[derive(Clone)]
struct SmallAllreduce {
    reps: u32,
    out_us: Rc<Cell<f64>>,
}

impl RankProgram for SmallAllreduce {
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let sim = c.sim();
            // One warmup settles QP setup and registration.
            let _ = allreduce(&c, Op::Sum, &[1.0]).await;
            let t0 = sim.now();
            for _ in 0..self.reps {
                let _ = allreduce(&c, Op::Sum, &[1.0]).await;
            }
            if c.rank() == 0 {
                self.out_us
                    .set(sim.now().since(t0).as_us_f64() / self.reps as f64);
            }
        }
    }
}

/// Mean latency of an 8-byte allreduce across `nodes` ranks (1 PPN),
/// in µs — the collective-latency column of the RoCE study.
pub fn small_allreduce_us(network: Network, nodes: usize, reps: u32) -> f64 {
    elanib_core::simcache::get_or_compute("mb.allreduce_us", &(network, nodes, reps), || {
        let out = Rc::new(Cell::new(0.0));
        elanib_mpi::run_job(
            JobSpec {
                network,
                nodes,
                ppn: 1,
                seed: 9,
            },
            SmallAllreduce {
                reps,
                out_us: out.clone(),
            },
        );
        out.get()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use elanib_mpi::RoceMode;

    #[test]
    fn incast_is_sink_bound_on_both_paper_networks() {
        // Doubling the sender pool cannot double delivered bandwidth:
        // the sink link is already the bottleneck.
        for net in Network::BOTH {
            let a = incast(net, 4, 65_536, 8).bandwidth_mb_s;
            let b = incast(net, 8, 65_536, 8).bandwidth_mb_s;
            assert!(a > 100.0, "{net}: implausibly low incast bw {a}");
            assert!(
                b < a * 1.5,
                "{net}: incast scaled with senders ({a} -> {b})"
            );
        }
    }

    #[test]
    fn uncongested_roce_is_competitive_with_ib() {
        // Two nodes, one sender: no cross traffic, so no CC mode may
        // tax the stream (the own-backlog exemption at work).
        let ib = incast(Network::InfiniBand, 2, 65_536, 8).bandwidth_mb_s;
        for mode in RoceMode::ALL {
            let r = incast(Network::RoceV2(mode), 2, 65_536, 8).bandwidth_mb_s;
            assert!(
                r > ib * 0.85,
                "{mode}: uncongested roce {r} MB/s vs ib {ib} MB/s"
            );
        }
    }

    #[test]
    fn allreduce_latency_grows_with_node_count() {
        for net in Network::BOTH {
            let small = small_allreduce_us(net, 2, 4);
            let large = small_allreduce_us(net, 16, 4);
            assert!(large > small, "{net}: {small} -> {large}");
        }
    }
}
