//! MPI_Init cost versus job size — the §3.3.1 connectionless argument
//! as a measurement. MVAPICH 0.9.2 establishes a queue pair with every
//! remote peer inside `MPI_Init`, so start-up cost grows linearly with
//! job size; Tports allocates nothing per peer, so Elan-4 start-up is
//! flat. (The paper argues this qualitatively; at thousands of ranks
//! it became the notorious InfiniBand job-launch problem.)

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::collectives::barrier;
use elanib_mpi::{Communicator, JobSpec, Network, RankProgram};

/// Init-time measurement for one job size.
#[derive(Clone, Copy, Debug)]
pub struct InitPoint {
    pub nodes: usize,
    pub ppn: usize,
    /// Simulated time from job launch until every rank has completed
    /// MPI_Init and a first barrier.
    pub init_time_us: f64,
}

#[derive(Clone)]
struct InitProbe {
    out_us: Rc<Cell<f64>>,
}

impl RankProgram for InitProbe {
    // The explicit `impl Future + 'static` (rather than `async fn`)
    // keeps the 'static bound visible at the trait boundary.
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            // Connection setup is charged by the world before this
            // body runs; the barrier makes rank 0 observe the slowest
            // rank's completion.
            barrier(&c).await;
            if c.rank() == 0 {
                self.out_us.set(c.sim().now().as_us_f64());
            }
        }
    }
}

/// Measure init+first-barrier time.
pub fn init_time(network: Network, nodes: usize, ppn: usize) -> InitPoint {
    let out = Rc::new(Cell::new(0.0));
    elanib_mpi::run_job(
        JobSpec {
            network,
            nodes,
            ppn,
            seed: 83,
        },
        InitProbe {
            out_us: out.clone(),
        },
    );
    InitPoint {
        nodes,
        ppn,
        init_time_us: out.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ib_init_grows_linearly_elan_stays_flat() {
        let ib4 = init_time(Network::InfiniBand, 4, 1).init_time_us;
        let ib16 = init_time(Network::InfiniBand, 16, 1).init_time_us;
        let ib32 = init_time(Network::InfiniBand, 32, 1).init_time_us;
        // Queue-pair setup dominates: time ∝ remote peers.
        let g1 = (ib16 - ib4) / 12.0;
        let g2 = (ib32 - ib16) / 16.0;
        assert!(g1 > 0.0 && g2 > 0.0);
        assert!(
            (g1 / g2 - 1.0).abs() < 0.25,
            "IB init should grow ~linearly per peer: {g1} vs {g2} us/peer"
        );
        let el4 = init_time(Network::Elan4, 4, 1).init_time_us;
        let el32 = init_time(Network::Elan4, 32, 1).init_time_us;
        // Elan's growth is only the barrier's log factor.
        assert!(
            el32 < el4 * 3.0,
            "connectionless init must stay near-flat: {el4} -> {el32}"
        );
        assert!(
            ib32 > el32 * 10.0,
            "the §3.3.1 gap: ib {ib32} vs elan {el32}"
        );
    }

    #[test]
    fn two_ppn_doubles_ib_peer_count() {
        let one = init_time(Network::InfiniBand, 8, 1).init_time_us;
        let two = init_time(Network::InfiniBand, 8, 2).init_time_us;
        // 8x1: 7 remote peers; 8x2: 14 remote peers per rank.
        assert!(two > one * 1.6, "1ppn {one} vs 2ppn {two}");
    }
}
