//! Unit tests for the allgather collective on both transports and both
//! algorithms (recursive doubling for 2^k, ring otherwise).

use std::cell::RefCell;
use std::rc::Rc;

use elanib_mpi::collectives::allgather;
use elanib_mpi::tports::ElanWorld;
use elanib_mpi::verbs::IbWorld;
use elanib_mpi::{bytes_of_f64, f64_of_bytes, Communicator, Network};
use elanib_simcore::Sim;

fn run_allgather(net: Network, nodes: usize, ppn: usize) {
    let sim = Sim::new(51);
    let done = Rc::new(RefCell::new(0usize));
    macro_rules! body {
        ($world:expr) => {{
            let w = $world;
            for r in 0..nodes * ppn {
                let c = w.comm(r);
                let d = done.clone();
                sim.spawn(format!("r{r}"), async move {
                    let me = c.rank();
                    let out = allgather(&c, bytes_of_f64(&[me as f64 * 3.0, 1.0]), 16).await;
                    assert_eq!(out.len(), c.size());
                    for (src, b) in out.iter().enumerate() {
                        assert_eq!(f64_of_bytes(b), vec![src as f64 * 3.0, 1.0]);
                    }
                    *d.borrow_mut() += 1;
                });
            }
        }};
    }
    match net {
        Network::InfiniBand => body!(IbWorld::new(&sim, nodes, ppn)),
        Network::Elan4 => body!(ElanWorld::new(&sim, nodes, ppn)),
        Network::RoceV2(_) => unreachable!("collectives iterate Network::BOTH"),
    }
    sim.run().unwrap();
    assert_eq!(*done.borrow(), nodes * ppn);
}

#[test]
fn allgather_power_of_two() {
    for net in Network::BOTH {
        run_allgather(net, 4, 2); // 8 ranks: recursive doubling
        run_allgather(net, 2, 1); // 2 ranks
    }
}

#[test]
fn allgather_ring_fallback() {
    for net in Network::BOTH {
        run_allgather(net, 3, 1); // 3 ranks: ring
        run_allgather(net, 5, 1); // 5 ranks: ring
    }
}

#[test]
fn allgather_single_rank() {
    run_allgather(Network::Elan4, 1, 1);
}
