//! MPI semantics tests, run identically against both transports: the
//! same rank program must produce the same *answers* on InfiniBand and
//! Elan-4 — only the timing may differ.

use std::cell::RefCell;
use std::rc::Rc;

use elanib_mpi::collectives::{allreduce, alltoall, barrier, bcast, gather, reduce, Op};
use elanib_mpi::tports::ElanWorld;
use elanib_mpi::verbs::IbWorld;
use elanib_mpi::{
    bytes_of_f64, empty, f64_of_bytes, irecv, isend, recv, send, sendrecv, waitall, Communicator,
};
use elanib_simcore::{Dur, Sim, SimTime};

/// Run `f` as the rank program on both networks and return the two
/// final simulated times (ib, elan).
fn run_both<F, Fut>(nodes: usize, ppn: usize, f: F) -> (SimTime, SimTime)
where
    F: Fn(Box<dyn CommAny>) -> Fut + Clone + 'static,
    Fut: std::future::Future<Output = ()> + 'static,
{
    let t_ib = {
        let sim = Sim::new(7);
        let w = IbWorld::new(&sim, nodes, ppn);
        let f = f.clone();
        w.spawn_ranks("test", move |c| f(Box::new(c)));
        sim.run().unwrap_or_else(|e| panic!("ib deadlock: {e}"))
    };
    let t_elan = {
        let sim = Sim::new(7);
        let w = ElanWorld::new(&sim, nodes, ppn);
        w.spawn_ranks("test", move |c| f(Box::new(c)));
        sim.run().unwrap_or_else(|e| panic!("elan deadlock: {e}"))
    };
    (t_ib, t_elan)
}

/// Object-safe adapter so one test body can run over either transport
/// without generics leaking into every closure.
///
/// (Apps use the generic [`Communicator`] directly; this adapter is a
/// test convenience only.)
pub trait CommAny {
    fn rank(&self) -> usize;
    fn size(&self) -> usize;
    fn sim(&self) -> Sim;
    fn send_b<'a>(
        &'a self,
        dst: usize,
        tag: i64,
        data: elanib_mpi::Bytes,
        bytes: u64,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = ()> + 'a>>;
    fn recv_b<'a>(
        &'a self,
        src: Option<usize>,
        tag: Option<i64>,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = elanib_mpi::RecvMsg> + 'a>>;
    fn barrier_b<'a>(&'a self) -> std::pin::Pin<Box<dyn std::future::Future<Output = ()> + 'a>>;
    fn allreduce_b<'a>(
        &'a self,
        op: Op,
        x: Vec<f64>,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = Vec<f64>> + 'a>>;
    fn bcast_b<'a>(
        &'a self,
        root: usize,
        data: elanib_mpi::Bytes,
        bytes: u64,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = elanib_mpi::Bytes> + 'a>>;
    fn gather_b<'a>(
        &'a self,
        root: usize,
        data: elanib_mpi::Bytes,
        bytes: u64,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = Option<Vec<elanib_mpi::Bytes>>> + 'a>>;
    fn alltoall_b<'a>(
        &'a self,
        payloads: Vec<elanib_mpi::Bytes>,
        per_peer: u64,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = Vec<elanib_mpi::Bytes>> + 'a>>;
    fn reduce_b<'a>(
        &'a self,
        root: usize,
        op: Op,
        x: Vec<f64>,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = Option<Vec<f64>>> + 'a>>;
    fn sendrecv_b<'a>(
        &'a self,
        dst: usize,
        stag: i64,
        data: elanib_mpi::Bytes,
        bytes: u64,
        src: usize,
        rtag: i64,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = elanib_mpi::RecvMsg> + 'a>>;
}

impl<C: Communicator> CommAny for C {
    fn rank(&self) -> usize {
        Communicator::rank(self)
    }
    fn size(&self) -> usize {
        Communicator::size(self)
    }
    fn sim(&self) -> Sim {
        Communicator::sim(self)
    }
    fn send_b<'a>(
        &'a self,
        dst: usize,
        tag: i64,
        data: elanib_mpi::Bytes,
        bytes: u64,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = ()> + 'a>> {
        Box::pin(send(self, dst, tag, data, bytes))
    }
    fn recv_b<'a>(
        &'a self,
        src: Option<usize>,
        tag: Option<i64>,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = elanib_mpi::RecvMsg> + 'a>> {
        Box::pin(recv(self, src, tag))
    }
    fn barrier_b<'a>(&'a self) -> std::pin::Pin<Box<dyn std::future::Future<Output = ()> + 'a>> {
        Box::pin(barrier(self))
    }
    fn allreduce_b<'a>(
        &'a self,
        op: Op,
        x: Vec<f64>,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = Vec<f64>> + 'a>> {
        Box::pin(async move { allreduce(self, op, &x).await })
    }
    fn bcast_b<'a>(
        &'a self,
        root: usize,
        data: elanib_mpi::Bytes,
        bytes: u64,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = elanib_mpi::Bytes> + 'a>> {
        Box::pin(bcast(self, root, data, bytes))
    }
    fn gather_b<'a>(
        &'a self,
        root: usize,
        data: elanib_mpi::Bytes,
        bytes: u64,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = Option<Vec<elanib_mpi::Bytes>>> + 'a>>
    {
        Box::pin(gather(self, root, data, bytes))
    }
    fn alltoall_b<'a>(
        &'a self,
        payloads: Vec<elanib_mpi::Bytes>,
        per_peer: u64,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = Vec<elanib_mpi::Bytes>> + 'a>> {
        Box::pin(alltoall(self, payloads, per_peer))
    }
    fn reduce_b<'a>(
        &'a self,
        root: usize,
        op: Op,
        x: Vec<f64>,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = Option<Vec<f64>>> + 'a>> {
        Box::pin(async move { reduce(self, root, op, &x).await })
    }
    fn sendrecv_b<'a>(
        &'a self,
        dst: usize,
        stag: i64,
        data: elanib_mpi::Bytes,
        bytes: u64,
        src: usize,
        rtag: i64,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = elanib_mpi::RecvMsg> + 'a>> {
        Box::pin(sendrecv(self, dst, stag, data, bytes, src, rtag))
    }
}

#[test]
fn pingpong_payload_integrity() {
    run_both(2, 1, |c| async move {
        if c.rank() == 0 {
            c.send_b(1, 5, bytes_of_f64(&[1.0, 2.0, 3.0]), 24).await;
            let m = c.recv_b(Some(1), Some(6)).await;
            assert_eq!(f64_of_bytes(&m.data), vec![2.0, 4.0, 6.0]);
        } else {
            let m = c.recv_b(Some(0), Some(5)).await;
            let doubled: Vec<f64> = f64_of_bytes(&m.data).iter().map(|x| x * 2.0).collect();
            c.send_b(0, 6, bytes_of_f64(&doubled), 24).await;
        }
    });
}

#[test]
fn large_message_rendezvous_integrity() {
    // 256 KiB: rendezvous on both networks.
    run_both(2, 1, |c| async move {
        let n = 1024usize;
        if c.rank() == 0 {
            let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
            c.send_b(1, 1, bytes_of_f64(&data), 256 * 1024).await;
        } else {
            let m = c.recv_b(Some(0), Some(1)).await;
            assert_eq!(m.bytes, 256 * 1024);
            let got = f64_of_bytes(&m.data);
            assert_eq!(got.len(), n);
            assert_eq!(got[1023], 1023.0);
        }
    });
}

#[test]
fn non_overtaking_same_tag() {
    run_both(2, 1, |c| async move {
        let count = 20;
        if c.rank() == 0 {
            for i in 0..count {
                c.send_b(1, 9, bytes_of_f64(&[i as f64]), 8).await;
            }
        } else {
            for i in 0..count {
                let m = c.recv_b(Some(0), Some(9)).await;
                assert_eq!(f64_of_bytes(&m.data)[0], i as f64, "overtaken at {i}");
            }
        }
    });
}

#[test]
fn mixed_eager_and_rendezvous_stay_ordered() {
    run_both(2, 1, |c| async move {
        if c.rank() == 0 {
            // Rendezvous first (slow), eager second (fast): the
            // receiver must still match them in posted order.
            c.send_b(1, 3, bytes_of_f64(&[111.0]), 500_000).await;
            c.send_b(1, 3, bytes_of_f64(&[222.0]), 8).await;
        } else {
            let a = c.recv_b(Some(0), Some(3)).await;
            let b = c.recv_b(Some(0), Some(3)).await;
            assert_eq!(f64_of_bytes(&a.data)[0], 111.0);
            assert_eq!(f64_of_bytes(&b.data)[0], 222.0);
            assert_eq!(a.bytes, 500_000);
            assert_eq!(b.bytes, 8);
        }
    });
}

#[test]
fn wildcard_source_and_tag() {
    run_both(3, 1, |c| async move {
        match c.rank() {
            0 => {
                // Two receives with ANY_SOURCE/ANY_TAG get both sends.
                let mut got = vec![];
                for _ in 0..2 {
                    let m = c.recv_b(None, None).await;
                    got.push((m.src, m.tag, f64_of_bytes(&m.data)[0]));
                }
                got.sort_by_key(|g| g.0);
                assert_eq!(got[0], (1, 10, 1.5));
                assert_eq!(got[1], (2, 20, 2.5));
            }
            1 => c.send_b(0, 10, bytes_of_f64(&[1.5]), 8).await,
            2 => c.send_b(0, 20, bytes_of_f64(&[2.5]), 8).await,
            _ => unreachable!(),
        }
    });
}

#[test]
fn unexpected_messages_match_later_receive() {
    run_both(2, 1, |c| async move {
        if c.rank() == 0 {
            c.send_b(1, 1, bytes_of_f64(&[7.0]), 8).await;
            c.send_b(1, 2, bytes_of_f64(&[8.0]), 8).await;
        } else {
            // Sleep so both messages are unexpected, then receive in
            // the *reverse* tag order.
            c.sim().sleep(Dur::from_ms(1)).await;
            let b = c.recv_b(Some(0), Some(2)).await;
            let a = c.recv_b(Some(0), Some(1)).await;
            assert_eq!(f64_of_bytes(&b.data)[0], 8.0);
            assert_eq!(f64_of_bytes(&a.data)[0], 7.0);
        }
    });
}

#[test]
fn sendrecv_exchange_ring() {
    run_both(4, 1, |c| async move {
        let n = c.size();
        let me = c.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let m = c
            .sendrecv_b(right, 7, bytes_of_f64(&[me as f64]), 8, left, 7)
            .await;
        assert_eq!(f64_of_bytes(&m.data)[0], left as f64);
    });
}

#[test]
fn intra_node_2ppn_messaging() {
    run_both(2, 2, |c| async move {
        // 4 ranks; 0&1 share node 0. Ring exchange crosses both the
        // loopback path and the wire.
        let n = c.size();
        let me = c.rank();
        let m = c
            .sendrecv_b(
                (me + 1) % n,
                1,
                bytes_of_f64(&[me as f64]),
                1024,
                (me + n - 1) % n,
                1,
            )
            .await;
        assert_eq!(f64_of_bytes(&m.data)[0], ((me + n - 1) % n) as f64);
    });
}

#[test]
fn barrier_synchronizes() {
    for nodes in [2, 3, 5] {
        run_both(nodes, 1, |c| async move {
            let before = c.sim().now();
            c.barrier_b().await;
            let after = c.sim().now();
            assert!(after > before);
            c.barrier_b().await;
            c.barrier_b().await;
        });
    }
}

#[test]
fn allreduce_sum_and_max() {
    for (nodes, ppn) in [(4, 1), (3, 2)] {
        run_both(nodes, ppn, |c| async move {
            let me = c.rank() as f64;
            let n = c.size() as f64;
            let s = c.allreduce_b(Op::Sum, vec![me, 1.0]).await;
            assert_eq!(s[0], n * (n - 1.0) / 2.0);
            assert_eq!(s[1], n);
            let m = c.allreduce_b(Op::Max, vec![me]).await;
            assert_eq!(m[0], n - 1.0);
            let mn = c.allreduce_b(Op::Min, vec![me]).await;
            assert_eq!(mn[0], 0.0);
        });
    }
}

#[test]
fn bcast_from_nonzero_root() {
    run_both(5, 1, |c| async move {
        let payload = if c.rank() == 3 {
            bytes_of_f64(&[42.0, 43.0])
        } else {
            empty()
        };
        let data = c.bcast_b(3, payload, 16).await;
        assert_eq!(f64_of_bytes(&data), vec![42.0, 43.0]);
    });
}

#[test]
fn reduce_to_root() {
    run_both(6, 1, |c| async move {
        let r = c.reduce_b(2, Op::Sum, vec![1.0]).await;
        if c.rank() == 2 {
            assert_eq!(r.unwrap(), vec![6.0]);
        } else {
            assert!(r.is_none());
        }
    });
}

#[test]
fn gather_collects_in_rank_order() {
    run_both(4, 1, |c| async move {
        let me = c.rank();
        let out = c.gather_b(0, bytes_of_f64(&[me as f64 * 10.0]), 8).await;
        if me == 0 {
            let v: Vec<f64> = out.unwrap().iter().map(|b| f64_of_bytes(b)[0]).collect();
            assert_eq!(v, vec![0.0, 10.0, 20.0, 30.0]);
        }
    });
}

#[test]
fn alltoall_exchanges_everything() {
    run_both(4, 1, |c| async move {
        let me = c.rank();
        let n = c.size();
        let payloads: Vec<_> = (0..n)
            .map(|d| bytes_of_f64(&[(me * 100 + d) as f64]))
            .collect();
        let got = c.alltoall_b(payloads, 8).await;
        for (src, b) in got.iter().enumerate() {
            assert_eq!(f64_of_bytes(b)[0], (src * 100 + me) as f64);
        }
    });
}

#[test]
fn waitall_completes_batch() {
    // Uses the generic API directly (not the adapter).
    let sim = Sim::new(3);
    let w = IbWorld::new(&sim, 2, 1);
    w.spawn_ranks("batch", |c| async move {
        if Communicator::rank(&c) == 0 {
            let mut reqs = vec![];
            for i in 0..8 {
                reqs.push(isend(&c, 1, i, bytes_of_f64(&[i as f64]), 8).await);
            }
            waitall(&c, reqs).await;
        } else {
            let mut reqs = vec![];
            for i in 0..8 {
                reqs.push(irecv(&c, Some(0), Some(i)).await);
            }
            let msgs = waitall(&c, reqs).await;
            for (i, m) in msgs.iter().enumerate() {
                assert_eq!(f64_of_bytes(&m.as_ref().unwrap().data)[0], i as f64);
            }
        }
    });
    sim.run().unwrap();
}

#[test]
fn determinism_same_seed_same_time() {
    let run = || {
        let sim = Sim::new(11);
        let w = ElanWorld::new(&sim, 4, 2);
        w.spawn_ranks("det", |c| async move {
            for _ in 0..3 {
                barrier(&c).await;
                let _ = allreduce(&c, Op::Sum, &[Communicator::rank(&c) as f64]).await;
            }
        });
        sim.run().unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn results_recorded_outside_tasks() {
    // Sanity that rank tasks can export results through Rc<RefCell>.
    let sim = Sim::new(1);
    let w = ElanWorld::new(&sim, 2, 1);
    let out = Rc::new(RefCell::new(Vec::new()));
    let out2 = out.clone();
    w.spawn_ranks("export", move |c| {
        let out = out2.clone();
        async move {
            let v = allreduce(&c, Op::Sum, &[1.0]).await;
            out.borrow_mut().push(v[0]);
        }
    });
    sim.run().unwrap();
    assert_eq!(*out.borrow(), vec![2.0, 2.0]);
}

#[test]
fn world_stats_reflect_traffic() {
    use elanib_mpi::{bytes_of_f64, recv, send};
    let sim = Sim::new(71);
    let wi = IbWorld::new(&sim, 2, 1);
    let we = ElanWorld::new(&sim, 2, 1);
    for (r, w) in [(0usize, &wi), (1, &wi)] {
        let c = w.comm(r);
        sim.spawn(format!("ib{r}"), async move {
            if Communicator::rank(&c) == 0 {
                // One eager, one rendezvous (registers), one unexpected.
                send(&c, 1, 1, bytes_of_f64(&[1.0]), 64).await;
                send(&c, 1, 2, bytes_of_f64(&[2.0]), 100_000).await;
            } else {
                Communicator::sim(&c).sleep(Dur::from_us(500)).await; // force unexpected
                let _ = recv(&c, Some(0), Some(1)).await;
                let _ = recv(&c, Some(0), Some(2)).await;
            }
        });
    }
    for r in 0..2usize {
        let c = we.comm(r);
        sim.spawn(format!("el{r}"), async move {
            if Communicator::rank(&c) == 0 {
                send(&c, 1, 1, bytes_of_f64(&[1.0]), 64).await;
            } else {
                let _ = recv(&c, Some(0), Some(1)).await;
            }
        });
    }
    sim.run().unwrap();
    let si = wi.stats();
    assert!(si.wire_bytes > 100_000, "rendezvous data crossed the wire");
    assert!(si.nic_messages >= 4, "eager + RTS + CTS + FIN at least");
    assert!(
        si.unexpected >= 1,
        "the delayed receiver saw unexpected arrivals"
    );
    assert!(si.reg_misses >= 2, "both rendezvous buffers registered");
    let se = we.stats();
    assert!(se.nic_messages >= 1);
    assert_eq!(se.reg_misses, 0, "Elan never registers");
    assert_eq!(se.reg_hits, 0);
}
