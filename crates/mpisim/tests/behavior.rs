//! Architectural-behaviour tests: the §3 mechanisms must produce the
//! paper's qualitative timing differences, not just correct answers.

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::tports::ElanWorld;
use elanib_mpi::verbs::IbWorld;
use elanib_mpi::{bytes_of_f64, irecv, isend, recv, send, Communicator};
use elanib_simcore::{Dur, Sim};

/// One-way small-message latency via 100-iteration ping-pong.
fn pingpong_us<W, C, F>(mk: F, bytes: u64) -> f64
where
    C: Communicator,
    F: FnOnce(&Sim) -> (W, Box<dyn Fn(usize) -> C>),
{
    let sim = Sim::new(5);
    let (_w, comm_of) = mk(&sim);
    let result = Rc::new(Cell::new(0.0));
    let iters = 100u32;
    for r in 0..2 {
        let c = comm_of(r);
        let res = result.clone();
        let s = sim.clone();
        sim.spawn(format!("pp{r}"), async move {
            let payload = bytes_of_f64(&vec![0.0; (bytes as usize / 8).max(1)]);
            if c.rank() == 0 {
                let t0 = s.now();
                for _ in 0..iters {
                    send(&c, 1, 1, payload.clone(), bytes).await;
                    let _ = recv(&c, Some(1), Some(2)).await;
                }
                let total = s.now().since(t0);
                res.set(total.as_us_f64() / (2.0 * iters as f64));
            } else {
                for _ in 0..iters {
                    let _ = recv(&c, Some(0), Some(1)).await;
                    send(&c, 0, 2, payload.clone(), bytes).await;
                }
            }
        });
    }
    sim.run().unwrap();
    result.get()
}

fn ib_pingpong_us(bytes: u64) -> f64 {
    pingpong_us(
        |sim| {
            let w = IbWorld::new(sim, 2, 1);
            let w2 = w.clone();
            (w, Box::new(move |r| w2.comm(r)) as Box<dyn Fn(usize) -> _>)
        },
        bytes,
    )
}

fn elan_pingpong_us(bytes: u64) -> f64 {
    pingpong_us(
        |sim| {
            let w = ElanWorld::new(sim, 2, 1);
            let w2 = w.clone();
            (w, Box::new(move |r| w2.comm(r)) as Box<dyn Fn(usize) -> _>)
        },
        bytes,
    )
}

#[test]
fn small_message_latency_calibration() {
    // §4.1 / Figure 1(a): "The average latency for Elan-4 is
    // approximately half of that for InfiniBand", with 2004-era
    // absolute values (IB ≈ 5.5–7 µs, Elan-4 ≈ 2.5–3.5 µs).
    let ib = ib_pingpong_us(8);
    let elan = elan_pingpong_us(8);
    assert!(ib > 4.5 && ib < 7.5, "ib 0-byte-ish latency {ib} µs");
    assert!(elan > 2.0 && elan < 3.8, "elan latency {elan} µs");
    let ratio = ib / elan;
    assert!(
        ratio > 1.6 && ratio < 2.6,
        "Elan should be about half of IB: ratio {ratio}"
    );
}

#[test]
fn ib_latency_jumps_at_eager_threshold() {
    // Figure 1(a): "the InfiniBand latency has a sharp jump between
    // 1 KB and 2 KB messages" (eager → rendezvous). Elan-4 shows no
    // such jump.
    let ib_1k = ib_pingpong_us(1024);
    let ib_2k = ib_pingpong_us(2048);
    assert!(
        ib_2k > ib_1k * 1.5,
        "expected a sharp protocol jump: 1K={ib_1k} µs, 2K={ib_2k} µs"
    );
    let elan_1k = elan_pingpong_us(1024);
    let elan_2k = elan_pingpong_us(2048);
    assert!(
        elan_2k < elan_1k * 1.45,
        "Elan must not jump: 1K={elan_1k} µs, 2K={elan_2k} µs"
    );
}

#[test]
fn bandwidth_8k_calibration() {
    // §4.1: "at a message size of 8 KB, the Elan-4 and InfiniBand
    // bandwidths are 552 MB/s and 249 MB/s respectively — a difference
    // of a factor of two."
    let ib_bw = 8192.0 / (ib_pingpong_us(8192) * 1e-6) / 1e6;
    let elan_bw = 8192.0 / (elan_pingpong_us(8192) * 1e-6) / 1e6;
    assert!(
        (200.0..320.0).contains(&ib_bw),
        "IB 8K bandwidth {ib_bw} MB/s (paper: 249)"
    );
    assert!(
        (480.0..650.0).contains(&elan_bw),
        "Elan 8K bandwidth {elan_bw} MB/s (paper: 552)"
    );
    assert!(elan_bw / ib_bw > 1.7, "factor-of-two gap at 8 KB");
}

#[test]
fn asymptotic_bandwidths_converge() {
    // Figure 1(b): "both networks asymptotically approach similar
    // bandwidth performance levels" (PCI-X limited).
    let ib_bw = 1e6_f64 / (ib_pingpong_us(1_000_000) * 1e-6) / 1e6;
    let elan_bw = 1e6_f64 / (elan_pingpong_us(1_000_000) * 1e-6) / 1e6;
    assert!(ib_bw > 700.0, "IB 1MB bandwidth {ib_bw} MB/s");
    assert!(elan_bw > 750.0, "Elan 1MB bandwidth {elan_bw} MB/s");
    assert!(
        elan_bw / ib_bw < 1.35,
        "large-message bandwidths must converge: elan {elan_bw} vs ib {ib_bw}"
    );
}

#[test]
fn four_mb_registration_thrash_dip() {
    // Figure 1(b): "the dramatic drop in bandwidth for InfiniBand using
    // a 4 MB message size ... reportedly due to thrashing when
    // registering memory."
    let bw_1m = 1e6 / (ib_pingpong_us(1 << 20) * 1e-6) / 1e6;
    let bw_4m = (4.0 * (1 << 20) as f64) / (ib_pingpong_us(4 << 20) * 1e-6) / 1e6;
    assert!(
        bw_4m < bw_1m * 0.80,
        "4 MB must dip below 1 MB bandwidth: 1M={bw_1m} MB/s 4M={bw_4m} MB/s"
    );
    // Elan has no registration and no dip.
    let e1 = 1e6 / (elan_pingpong_us(1 << 20) * 1e-6) / 1e6;
    let e4 = (4.0 * (1 << 20) as f64) / (elan_pingpong_us(4 << 20) * 1e-6) / 1e6;
    assert!(e4 > e1 * 0.95, "Elan must not dip: 1M={e1} 4M={e4}");
}

/// The independent-progress experiment (§3.3.3): sender posts a large
/// isend then computes for `compute_ms` without touching MPI; the
/// receiver measures when its blocking recv completes.
fn rendezvous_recv_time_ms(elan: bool, compute_ms: u64) -> f64 {
    let sim = Sim::new(9);
    let done_at = Rc::new(Cell::new(0.0));
    let bytes = 2_000_000u64;
    macro_rules! body {
        ($w:expr, $comm:ident) => {{
            let w = $w;
            for r in 0..2usize {
                let c = w.comm(r);
                let d = done_at.clone();
                let s = sim.clone();
                sim.spawn(format!("rk{r}"), async move {
                    if c.rank() == 0 {
                        let req = isend(&c, 1, 1, bytes_of_f64(&[1.0; 64]), bytes).await;
                        // Long compute phase: no MPI calls at all.
                        c_node_compute(&c, &s, Dur::from_ms(compute_ms)).await;
                        c.wait(req).await;
                    } else {
                        let req = irecv(&c, Some(0), Some(1)).await;
                        c.wait(req).await;
                        d.set(s.now().as_secs_f64() * 1e3);
                    }
                });
            }
        }};
    }
    if elan {
        body!(ElanWorld::new(&sim, 2, 1), TportsComm)
    } else {
        body!(IbWorld::new(&sim, 2, 1), VerbsComm)
    }
    sim.run().unwrap();
    done_at.get()
}

/// Model a pure compute phase for either communicator type.
async fn c_node_compute<C: Communicator>(_c: &C, s: &Sim, d: Dur) {
    s.sleep(d).await;
}

#[test]
fn independent_progress_is_the_difference() {
    // Elan: the NIC answers the RTS; the receive completes in transfer
    // time (~2.3 ms for 2 MB) regardless of the sender's 50 ms compute.
    let elan = rendezvous_recv_time_ms(true, 50);
    assert!(
        elan < 10.0,
        "Elan rendezvous must complete during sender compute: {elan} ms"
    );
    // InfiniBand/MVAPICH: the CTS sits in the sender's inbox until the
    // sender re-enters MPI at t=50ms; the receive completes after that.
    let ib = rendezvous_recv_time_ms(false, 50);
    assert!(
        ib > 50.0,
        "IB rendezvous must stall until the sender re-enters MPI: {ib} ms"
    );
}

#[test]
fn ib_sender_compute_directly_delays_receiver() {
    // Scaling the sender's compute phase shifts the IB completion
    // one-for-one; Elan's is flat. This is Figure 3's mechanism.
    let ib_10 = rendezvous_recv_time_ms(false, 10);
    let ib_30 = rendezvous_recv_time_ms(false, 30);
    let delta = ib_30 - ib_10;
    assert!(
        (15.0..25.0).contains(&delta),
        "IB completion should track sender compute (Δ≈20ms): {delta}"
    );
    let e_10 = rendezvous_recv_time_ms(true, 10);
    let e_30 = rendezvous_recv_time_ms(true, 30);
    assert!(
        (e_30 - e_10).abs() < 1.0,
        "Elan completion must not track sender compute: {} vs {}",
        e_10,
        e_30
    );
}

#[test]
fn message_rate_gap_small_messages() {
    // §4.1 / Figure 1(c): streaming micro-benchmark shows "over a
    // factor of five advantage" for Elan-4 at small message sizes.
    // Measured here as back-to-back isend issue rate of 8-byte sends.
    fn stream_rate_msgs_per_us(elan: bool) -> f64 {
        let sim = Sim::new(4);
        let rate = Rc::new(Cell::new(0.0));
        let count = 2000usize;
        macro_rules! body {
            ($w:expr) => {{
                let w = $w;
                for r in 0..2usize {
                    let c = w.comm(r);
                    let rt = rate.clone();
                    let s = sim.clone();
                    sim.spawn(format!("st{r}"), async move {
                        if c.rank() == 0 {
                            // Wait until the receiver has pre-posted
                            // everything (the [12] streaming benchmark
                            // pre-posts a matching number of receives).
                            let _ = recv(&c, Some(1), Some(3)).await;
                            let t0 = s.now();
                            let mut reqs = Vec::new();
                            for _ in 0..count {
                                reqs.push(isend(&c, 1, 1, bytes_of_f64(&[0.0]), 8).await);
                            }
                            for r in reqs {
                                c.wait(r).await;
                            }
                            // Completion ack.
                            let _ = recv(&c, Some(1), Some(2)).await;
                            let dt = s.now().since(t0).as_us_f64();
                            rt.set(count as f64 / dt);
                        } else {
                            let mut reqs = Vec::new();
                            for _ in 0..count {
                                reqs.push(irecv(&c, Some(0), Some(1)).await);
                            }
                            send(&c, 0, 3, bytes_of_f64(&[0.0]), 8).await;
                            for r in reqs {
                                c.wait(r).await;
                            }
                            send(&c, 0, 2, bytes_of_f64(&[0.0]), 8).await;
                        }
                    });
                }
            }};
        }
        if elan {
            body!(ElanWorld::new(&sim, 2, 1))
        } else {
            body!(IbWorld::new(&sim, 2, 1))
        }
        sim.run().unwrap();
        rate.get()
    }
    let elan = stream_rate_msgs_per_us(true);
    let ib = stream_rate_msgs_per_us(false);
    assert!(
        elan / ib > 3.0,
        "Elan streaming advantage must be large: elan={elan}/µs ib={ib}/µs ratio={}",
        elan / ib
    );
}
