//! Sub-communicator tests: split semantics, isolation between groups,
//! and generic collectives running inside subgroups.

use std::cell::RefCell;
use std::rc::Rc;

use elanib_mpi::collectives::{allreduce, barrier, bcast, Op};
use elanib_mpi::tports::ElanWorld;
use elanib_mpi::verbs::IbWorld;
use elanib_mpi::{bytes_of_f64, f64_of_bytes, recv, send, Communicator, Network, SubComm};
use elanib_simcore::Sim;

/// 2x3 grid: split by row and by column; run collectives in both.
async fn grid_split_program<C: Communicator>(c: C, results: Rc<RefCell<Vec<(usize, f64, f64)>>>) {
    let me = c.rank();
    let (row, col) = (me / 3, me % 3);
    let rows = SubComm::split(&c, |r| Some((r / 3) as u32)).unwrap();
    let cols = SubComm::split(&c, |r| Some(10 + (r % 3) as u32)).unwrap();
    assert_eq!(rows.size(), 3);
    assert_eq!(cols.size(), 2);
    assert_eq!(rows.rank(), col);
    assert_eq!(cols.rank(), row);
    // Row sum of world ranks: row 0 -> 0+1+2 = 3; row 1 -> 3+4+5 = 12.
    let row_sum = allreduce(&rows, Op::Sum, &[me as f64]).await[0];
    // Column sum: col c -> c + (c+3).
    let col_sum = allreduce(&cols, Op::Sum, &[me as f64]).await[0];
    barrier(&rows).await;
    results.borrow_mut().push((me, row_sum, col_sum));
}

#[test]
fn split_collectives_isolated_per_group() {
    for net in Network::BOTH {
        let sim = Sim::new(3);
        let results = Rc::new(RefCell::new(Vec::new()));
        macro_rules! body {
            ($w:expr) => {{
                let w = $w;
                for r in 0..6usize {
                    let c = w.comm(r);
                    let res = results.clone();
                    sim.spawn(format!("r{r}"), grid_split_program(c, res));
                }
            }};
        }
        match net {
            Network::InfiniBand => body!(IbWorld::new(&sim, 3, 2)),
            Network::Elan4 => body!(ElanWorld::new(&sim, 3, 2)),
            Network::RoceV2(_) => unreachable!("subcomm iterates Network::BOTH"),
        }
        sim.run().unwrap();
        let mut rs = results.borrow().clone();
        rs.sort_by_key(|r| r.0);
        for (me, row_sum, col_sum) in rs {
            let expect_row = if me / 3 == 0 { 3.0 } else { 12.0 };
            let expect_col = (2 * (me % 3) + 3) as f64;
            assert_eq!(row_sum, expect_row, "{net} rank {me} row sum");
            assert_eq!(col_sum, expect_col, "{net} rank {me} col sum");
        }
    }
}

#[test]
fn undefined_color_excludes_rank() {
    let sim = Sim::new(5);
    let w = ElanWorld::new(&sim, 4, 1);
    let count = Rc::new(RefCell::new(0usize));
    for r in 0..4usize {
        let c = w.comm(r);
        let k = count.clone();
        sim.spawn(format!("r{r}"), async move {
            // Only even ranks join.
            let sub = SubComm::split(&c, |r| (r % 2 == 0).then_some(0));
            match sub {
                Some(s) => {
                    assert_eq!(s.size(), 2);
                    let v = allreduce(&s, Op::Sum, &[1.0]).await[0];
                    assert_eq!(v, 2.0);
                    *k.borrow_mut() += 1;
                }
                None => assert!(c.rank() % 2 == 1),
            }
        });
    }
    sim.run().unwrap();
    assert_eq!(*count.borrow(), 2);
}

#[test]
fn point_to_point_within_subgroup_translates_ranks() {
    let sim = Sim::new(7);
    let w = IbWorld::new(&sim, 4, 1);
    for r in 0..4usize {
        let c = w.comm(r);
        sim.spawn(format!("r{r}"), async move {
            // Group = upper half {2, 3} as subgroup ranks {0, 1}.
            let sub = SubComm::split(&c, |r| (r >= 2).then_some(0));
            if let Some(s) = sub {
                if s.rank() == 0 {
                    send(&s, 1, 5, bytes_of_f64(&[42.0]), 8).await;
                } else {
                    let m = recv(&s, Some(0), Some(5)).await;
                    assert_eq!(m.src, 0, "source reported in subgroup ranks");
                    assert_eq!(f64_of_bytes(&m.data)[0], 42.0);
                }
            }
        });
    }
    sim.run().unwrap();
}

#[test]
fn bcast_inside_subgroup() {
    let sim = Sim::new(9);
    let w = ElanWorld::new(&sim, 6, 1);
    for r in 0..6usize {
        let c = w.comm(r);
        sim.spawn(format!("r{r}"), async move {
            let sub = SubComm::split(&c, |r| Some((r % 2) as u32)).unwrap();
            let root_payload = if sub.rank() == 0 {
                bytes_of_f64(&[c.rank() as f64])
            } else {
                elanib_mpi::empty()
            };
            let out = bcast(&sub, 0, root_payload, 8).await;
            // Subgroup rank 0 of group (r%2) is world rank (r%2).
            assert_eq!(f64_of_bytes(&out)[0], (c.rank() % 2) as f64);
        });
    }
    sim.run().unwrap();
}
