//! Fabric-contention behaviour through the full MPI stack: incast
//! (many-to-one) and hotspot patterns must show the congestion the
//! b_eff benchmark (Figure 1(d)) depends on, and disjoint traffic must
//! not.

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::{
    bytes_of_f64, irecv, isend, recv, send, waitall, Communicator, JobSpec, Network, RankProgram,
};
use elanib_simcore::SimTime;

/// All ranks except 0 send `bytes` to rank 0 simultaneously; returns
/// the simulated completion time.
#[derive(Clone)]
struct Incast {
    bytes: u64,
    done_at: Rc<Cell<f64>>,
}

impl RankProgram for Incast {
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            let n = c.size();
            if c.rank() == 0 {
                let mut reqs = Vec::new();
                for src in 1..n {
                    reqs.push(irecv(&c, Some(src), Some(1)).await);
                }
                waitall(&c, reqs).await;
                self.done_at.set(c.sim().now().as_secs_f64());
            } else {
                send(&c, 0, 1, bytes_of_f64(&[c.rank() as f64]), self.bytes).await;
            }
        }
    }
}

fn incast_time(net: Network, nodes: usize, bytes: u64) -> f64 {
    let done = Rc::new(Cell::new(0.0));
    elanib_mpi::run_job(
        JobSpec {
            network: net,
            nodes,
            ppn: 1,
            seed: 19,
        },
        Incast {
            bytes,
            done_at: done.clone(),
        },
    );
    done.get()
}

#[test]
fn incast_is_receiver_bandwidth_bound() {
    // 8 senders of 1 MB each into one node: the receiver's cable and
    // PCI-X serialize ~8 MB, so completion must take at least
    // 8 MB / 0.95 GB/s regardless of network.
    let total_bytes = 8.0 * 1_000_000.0;
    for net in Network::BOTH {
        let t = incast_time(net, 9, 1_000_000);
        let floor = total_bytes / 0.96e9;
        assert!(
            t > floor,
            "{net}: incast in {t}s beats the receiver bandwidth floor {floor}s"
        );
        assert!(
            t < floor * 1.6,
            "{net}: incast too slow: {t}s vs floor {floor}s"
        );
    }
}

#[test]
fn incast_scales_with_sender_count() {
    for net in Network::BOTH {
        let t4 = incast_time(net, 5, 500_000);
        let t8 = incast_time(net, 9, 500_000);
        // Twice the data through the same choke point: ~2x the time.
        let ratio = t8 / t4;
        assert!(
            (1.6..2.4).contains(&ratio),
            "{net}: incast time should ~double with senders: {ratio}"
        );
    }
}

/// Disjoint pairs must run at full speed — no false sharing anywhere in
/// the stack.
#[derive(Clone)]
struct DisjointPairs {
    bytes: u64,
    done_at: Rc<Cell<f64>>,
}

impl RankProgram for DisjointPairs {
    #[allow(clippy::manual_async_fn)]
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
        async move {
            use elanib_mpi::collectives::barrier;
            let me = c.rank();
            let n = c.size();
            // Exclude MPI_Init (InfiniBand's O(P) queue-pair setup is
            // real, and measured separately in microbench::init_time).
            barrier(&c).await;
            let t0 = c.sim().now();
            if me.is_multiple_of(2) {
                send(&c, me + 1, 1, bytes_of_f64(&[me as f64]), self.bytes).await;
            } else {
                let _ = recv(&c, Some(me - 1), Some(1)).await;
                if me == n - 1 {
                    self.done_at.set(c.sim().now().since(t0).as_secs_f64());
                }
            }
        }
    }
}

#[test]
fn disjoint_pairs_do_not_contend() {
    // 1 pair vs 4 pairs moving the same per-pair volume: wall time must
    // be nearly identical (paths are disjoint; only switch fan-out is
    // shared).
    for net in Network::BOTH {
        let run = |nodes: usize| {
            let done = Rc::new(Cell::new(0.0));
            elanib_mpi::run_job(
                JobSpec {
                    network: net,
                    nodes,
                    ppn: 1,
                    seed: 19,
                },
                DisjointPairs {
                    bytes: 1_000_000,
                    done_at: done.clone(),
                },
            );
            done.get()
        };
        let t1 = run(2);
        let t4 = run(8);
        assert!(
            t4 < t1 * 1.35,
            "{net}: disjoint pairs must not contend: 1 pair {t1}s vs 4 pairs {t4}s"
        );
    }
}

/// Congestion at the MPI level shows up as reduced aggregate
/// bandwidth, not lost messages: every payload still arrives intact.
#[test]
fn congested_payloads_survive() {
    #[derive(Clone)]
    struct Checked {
        sum: Rc<Cell<f64>>,
    }
    impl RankProgram for Checked {
        #[allow(clippy::manual_async_fn)]
        fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
            async move {
                let n = c.size();
                if c.rank() == 0 {
                    let mut sum = 0.0;
                    for _ in 1..n {
                        let m = recv(&c, None, Some(1)).await;
                        sum += elanib_mpi::f64_of_bytes(&m.data)[0];
                    }
                    self.sum.set(sum);
                } else {
                    // Two concurrent sends per rank for extra pressure.
                    let r1 = isend(&c, 0, 1, bytes_of_f64(&[c.rank() as f64]), 300_000).await;
                    c.wait(r1).await;
                }
            }
        }
    }
    let sum = Rc::new(Cell::new(0.0));
    elanib_mpi::run_job(
        JobSpec {
            network: Network::InfiniBand,
            nodes: 12,
            ppn: 1,
            seed: 19,
        },
        Checked { sum: sum.clone() },
    );
    assert_eq!(sum.get(), (1..12).sum::<usize>() as f64);
}

#[test]
fn simulated_clock_is_shared_not_perrank() {
    // Regression guard: incast completion is one global instant, after
    // every sender's traffic — not any per-rank illusion.
    let done = Rc::new(Cell::new(0.0));
    elanib_mpi::run_job(
        JobSpec {
            network: Network::Elan4,
            nodes: 4,
            ppn: 1,
            seed: 19,
        },
        Incast {
            bytes: 100_000,
            done_at: done.clone(),
        },
    );
    assert!(done.get() > 0.0);
    let t = SimTime::ZERO + elanib_simcore::Dur::from_secs_f64(done.get());
    assert!(t > SimTime::ZERO);
}
