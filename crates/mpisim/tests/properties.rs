//! Property-based tests across both MPI transports: random traffic
//! must deliver intact, in order, with identical *results* (not
//! timings) on InfiniBand and Elan-4; collectives must agree with
//! serial reference reductions.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use elanib_mpi::collectives::{allreduce, alltoall, bcast, Op};
use elanib_mpi::tports::ElanWorld;
use elanib_mpi::verbs::IbWorld;
use elanib_mpi::{bytes_of_f64, f64_of_bytes, isend, recv, waitall, Communicator, Network};
use elanib_simcore::Sim;

/// Random pairwise traffic: rank 0 sends a sequence of (tag, value,
/// size) messages to rank 1; rank 1 receives them by tag in a shuffled
/// order. Returns what rank 1 observed, in its receive order.
fn run_traffic(net: Network, msgs: Vec<(i64, f64, u64)>, recv_order: Vec<usize>) -> Vec<f64> {
    let sim = Sim::new(23);
    let got = Rc::new(RefCell::new(Vec::new()));
    macro_rules! body {
        ($world:expr) => {{
            let w = $world;
            for r in 0..2usize {
                let c = w.comm(r);
                let msgs = msgs.clone();
                let order = recv_order.clone();
                let g = got.clone();
                sim.spawn(format!("r{r}"), async move {
                    if c.rank() == 0 {
                        // Non-blocking sends: the receiver drains in a
                        // shuffled order, so blocking rendezvous sends
                        // would deadlock (correct MPI unsafe-ordering
                        // behaviour, verified elsewhere).
                        let mut reqs = Vec::new();
                        for (i, &(tag, v, bytes)) in msgs.iter().enumerate() {
                            reqs.push(
                                isend(&c, 1, tag * 100 + i as i64, bytes_of_f64(&[v]), bytes).await,
                            );
                        }
                        waitall(&c, reqs).await;
                    } else {
                        for &i in &order {
                            let (tag, _, _) = msgs[i];
                            let m = recv(&c, Some(0), Some(tag * 100 + i as i64)).await;
                            g.borrow_mut().push(f64_of_bytes(&m.data)[0]);
                        }
                    }
                });
            }
        }};
    }
    match net {
        Network::InfiniBand => body!(IbWorld::new(&sim, 2, 1)),
        Network::Elan4 => body!(ElanWorld::new(&sim, 2, 1)),
        Network::RoceV2(_) => unreachable!("properties iterate Network::BOTH"),
    }
    sim.run().unwrap();
    Rc::try_unwrap(got).unwrap().into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any message schedule, received in any order (by unique tag),
    /// delivers exactly the sent values — on both networks, with byte
    /// sizes straddling every protocol boundary.
    #[test]
    fn random_traffic_integrity(
        msgs in prop::collection::vec(
            (0i64..3, -1e6f64..1e6, prop_oneof![
                Just(8u64), Just(512), Just(1024), Just(2048),
                Just(4096), Just(8192), Just(100_000)
            ]),
            1..12,
        ),
        seed in 0u64..1000,
    ) {
        // Deterministic shuffle of the receive order.
        let n = msgs.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let expect: Vec<f64> = order.iter().map(|&i| msgs[i].1).collect();
        for net in Network::BOTH {
            let got = run_traffic(net, msgs.clone(), order.clone());
            prop_assert_eq!(&got, &expect, "{} delivered wrong values", net);
        }
    }

    /// allreduce equals the serial reduction for any operator, vector,
    /// and rank count, on both networks.
    #[test]
    fn allreduce_matches_serial(
        per_rank in prop::collection::vec(-1e3f64..1e3, 1..4),
        nodes in 1usize..6,
        ppn in 1usize..3,
        op_sel in 0u8..3,
    ) {
        let op = [Op::Sum, Op::Max, Op::Min][op_sel as usize];
        let nranks = nodes * ppn;
        // Rank r contributes per_rank rotated by r (deterministic,
        // distinct across ranks).
        let contrib = |r: usize| -> Vec<f64> {
            per_rank.iter().map(|v| v + r as f64).collect()
        };
        let mut expect = contrib(0);
        for r in 1..nranks {
            let c = contrib(r);
            for (e, x) in expect.iter_mut().zip(&c) {
                *e = match op {
                    Op::Sum => *e + x,
                    Op::Max => e.max(*x),
                    Op::Min => e.min(*x),
                };
            }
        }
        for net in Network::BOTH {
            let sim = Sim::new(31);
            let results = Rc::new(RefCell::new(Vec::new()));
            macro_rules! body {
                ($world:expr) => {{
                    let w = $world;
                    for r in 0..nranks {
                        let c = w.comm(r);
                        let mine = contrib(r);
                        let res = results.clone();
                        sim.spawn(format!("r{r}"), async move {
                            let out = allreduce(&c, op, &mine).await;
                            res.borrow_mut().push(out);
                        });
                    }
                }};
            }
            match net {
                Network::InfiniBand => body!(IbWorld::new(&sim, nodes, ppn)),
                Network::Elan4 => body!(ElanWorld::new(&sim, nodes, ppn)),
                Network::RoceV2(_) => unreachable!("properties iterate Network::BOTH"),
            }
            sim.run().unwrap();
            for out in results.borrow().iter() {
                for (a, b) in out.iter().zip(&expect) {
                    prop_assert!((a - b).abs() < 1e-9,
                        "{}: got {a}, expected {b}", net);
                }
            }
        }
    }

    /// bcast delivers the root's payload to every rank for any root.
    #[test]
    fn bcast_from_any_root(
        nodes in 1usize..7,
        root_sel in 0usize..7,
        payload in prop::collection::vec(-1e3f64..1e3, 1..5),
    ) {
        let root = root_sel % nodes;
        let sim = Sim::new(37);
        let w = ElanWorld::new(&sim, nodes, 1);
        let seen = Rc::new(RefCell::new(0usize));
        for r in 0..nodes {
            let c = w.comm(r);
            let p = payload.clone();
            let s = seen.clone();
            sim.spawn(format!("r{r}"), async move {
                let data = if c.rank() == root {
                    bytes_of_f64(&p)
                } else {
                    elanib_mpi::empty()
                };
                let out = bcast(&c, root, data, (p.len() * 8) as u64).await;
                assert_eq!(f64_of_bytes(&out), p);
                *s.borrow_mut() += 1;
            });
        }
        sim.run().unwrap();
        prop_assert_eq!(*seen.borrow(), nodes);
    }

    /// alltoall is a permutation: every rank gets exactly what every
    /// other rank addressed to it.
    #[test]
    fn alltoall_is_exact(nodes in 2usize..6, ppn in 1usize..3) {
        let nranks = nodes * ppn;
        let sim = Sim::new(41);
        let ok = Rc::new(RefCell::new(0usize));
        let w = IbWorld::new(&sim, nodes, ppn);
        for r in 0..nranks {
            let c = w.comm(r);
            let k = ok.clone();
            sim.spawn(format!("r{r}"), async move {
                let me = c.rank();
                let n = c.size();
                let payloads: Vec<_> = (0..n)
                    .map(|d| bytes_of_f64(&[(me * 1000 + d) as f64]))
                    .collect();
                let got = alltoall(&c, payloads, 8).await;
                for (src, b) in got.iter().enumerate() {
                    assert_eq!(f64_of_bytes(b)[0], (src * 1000 + me) as f64);
                }
                *k.borrow_mut() += 1;
            });
        }
        sim.run().unwrap();
        prop_assert_eq!(*ok.borrow(), nranks);
    }
}
