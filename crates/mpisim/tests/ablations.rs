//! Ablation tests — the paper's §7 program ("study the exact source of
//! differences in scaling efficiency") made executable: toggle one
//! architectural mechanism at a time and verify it moves the needle in
//! the predicted direction.

use std::cell::Cell;
use std::rc::Rc;

use elanib_mpi::tports::{ElanWorld, TportsMpiParams};
use elanib_mpi::verbs::{IbWorld, VerbsParams};
use elanib_mpi::{bytes_of_f64, irecv, isend, Communicator, CTX_WORLD};
use elanib_nic::{ElanParams, HcaParams};
use elanib_nodesim::NodeParams;
use elanib_simcore::{Dur, Sim};

/// Rendezvous-while-computing experiment (as in the behavior suite):
/// returns the receiver's completion time in ms.
fn ib_recv_time_ms(params: VerbsParams, compute_ms: u64) -> f64 {
    let sim = Sim::new(9);
    let w = IbWorld::with_params(
        &sim,
        2,
        1,
        NodeParams::default(),
        HcaParams::default(),
        params,
    );
    let done = Rc::new(Cell::new(0.0));
    for r in 0..2usize {
        let c = w.comm(r);
        let (d, s) = (done.clone(), sim.clone());
        sim.spawn(format!("r{r}"), async move {
            if c.rank() == 0 {
                let req = isend(&c, 1, 1, bytes_of_f64(&[0.0; 16]), 2_000_000).await;
                c.compute(Dur::from_ms(compute_ms), 0.1).await;
                c.wait(req).await;
            } else {
                let req = irecv(&c, Some(0), Some(1)).await;
                c.wait(req).await;
                d.set(s.now().as_secs_f64() * 1e3);
            }
        });
    }
    sim.run().unwrap();
    done.get()
}

/// ABLATION 1: giving MVAPICH an asynchronous progress engine removes
/// the rendezvous stall — InfiniBand then behaves like Elan-4 on the
/// independent-progress experiment. This isolates §3.3.3 as the cause.
#[test]
fn async_progress_removes_the_stall() {
    let baseline = ib_recv_time_ms(VerbsParams::default(), 40);
    assert!(
        baseline > 40.0,
        "stock MVAPICH must stall until the sender re-enters MPI: {baseline} ms"
    );
    let ablated = ib_recv_time_ms(
        VerbsParams {
            async_progress: true,
            ..VerbsParams::default()
        },
        40,
    );
    assert!(
        ablated < 10.0,
        "async progress must complete the transfer during compute: {ablated} ms"
    );
}

/// The ablated progress engine is not free: its per-message interrupt
/// cost shows up in a latency-sensitive exchange.
#[test]
fn async_progress_costs_latency() {
    // Many small round trips: per message the interrupt dispatch adds
    // async_progress_cost over the polling path.
    fn pingpong_us(params: VerbsParams) -> f64 {
        let sim = Sim::new(4);
        let w = IbWorld::with_params(
            &sim,
            2,
            1,
            NodeParams::default(),
            HcaParams::default(),
            params,
        );
        let out = Rc::new(Cell::new(0.0));
        for r in 0..2usize {
            let c = w.comm(r);
            let (o, s) = (out.clone(), sim.clone());
            sim.spawn(format!("r{r}"), async move {
                let payload = bytes_of_f64(&[0.0]);
                if c.rank() == 0 {
                    let t0 = s.now();
                    for _ in 0..50 {
                        let sr = isend(&c, 1, 1, payload.clone(), 8).await;
                        c.wait(sr).await;
                        let rr = irecv(&c, Some(1), Some(2)).await;
                        c.wait(rr).await;
                    }
                    o.set(s.now().since(t0).as_us_f64() / 100.0);
                } else {
                    for _ in 0..50 {
                        let rr = irecv(&c, Some(0), Some(1)).await;
                        c.wait(rr).await;
                        let sr = isend(&c, 0, 2, payload.clone(), 8).await;
                        c.wait(sr).await;
                    }
                }
            });
        }
        sim.run().unwrap();
        out.get()
    }
    let poll = pingpong_us(VerbsParams::default());
    let intr = pingpong_us(VerbsParams {
        async_progress: true,
        ..VerbsParams::default()
    });
    assert!(
        intr > poll + 2.0,
        "interrupt-driven progress must cost latency: poll {poll} vs intr {intr}"
    );
}

/// ABLATION 2: charging Elan-4 explicit host-based registration makes
/// it buffer-reuse sensitive, quantifying how much §3.3.2 protects it.
#[test]
fn explicit_registration_makes_elan_reuse_sensitive() {
    fn elan_pingpong_us(params: TportsMpiParams, fresh_buffers: bool) -> f64 {
        let sim = Sim::new(4);
        let w = ElanWorld::with_params(
            &sim,
            2,
            1,
            NodeParams::default(),
            ElanParams::default(),
            params,
        );
        let out = Rc::new(Cell::new(0.0));
        let bytes = 256 * 1024u64;
        for r in 0..2usize {
            let c = w.comm(r);
            let (o, s) = (out.clone(), sim.clone());
            sim.spawn(format!("r{r}"), async move {
                let payload = bytes_of_f64(&vec![0.0; 64]);
                let region = |dir: u64, i: u32| {
                    if fresh_buffers {
                        (dir << 58) | (5_000 + i as u64)
                    } else {
                        dir << 58
                    }
                };
                if c.rank() == 0 {
                    let t0 = s.now();
                    for i in 0..20 {
                        let sr = c
                            .isend_full(1, 1, CTX_WORLD, payload.clone(), bytes, region(1, i))
                            .await;
                        c.wait(sr).await;
                        let rr = c
                            .irecv_full(Some(1), Some(2), CTX_WORLD, region(2, i))
                            .await;
                        c.wait(rr).await;
                    }
                    o.set(s.now().since(t0).as_us_f64() / 40.0);
                } else {
                    for i in 0..20 {
                        let rr = c
                            .irecv_full(Some(0), Some(1), CTX_WORLD, region(3, i))
                            .await;
                        c.wait(rr).await;
                        let sr = c
                            .isend_full(0, 2, CTX_WORLD, payload.clone(), bytes, region(4, i))
                            .await;
                        c.wait(sr).await;
                    }
                }
            });
        }
        sim.run().unwrap();
        out.get()
    }
    // Stock Elan: fresh buffers cost nothing.
    let stock = TportsMpiParams::default();
    let a = elan_pingpong_us(stock, false);
    let b = elan_pingpong_us(stock, true);
    assert!(
        (b / a - 1.0).abs() < 0.02,
        "stock Elan reuse-insensitive: {a} vs {b}"
    );
    // Ablated Elan: fresh buffers pay IB-style registration.
    let ablated = TportsMpiParams {
        explicit_registration: true,
        ..stock
    };
    let hot = elan_pingpong_us(ablated, false);
    let cold = elan_pingpong_us(ablated, true);
    assert!(
        cold > hot * 1.15,
        "ablated Elan must become reuse-sensitive: hot {hot} vs cold {cold}"
    );
    // With warm caches, the ablation costs only the reg_check lookup.
    assert!(hot < a * 1.10, "warm ablated path near stock: {hot} vs {a}");
}

/// EXTENSION: QsNet's hardware barrier — constant-time at any scale,
/// versus the log-depth software dissemination barrier.
#[test]
fn hardware_barrier_is_flat_in_rank_count() {
    use elanib_mpi::collectives::barrier;

    fn barrier_time_us(nodes: usize, hw: Option<Dur>) -> f64 {
        let sim = Sim::new(6);
        let w = ElanWorld::with_params(
            &sim,
            nodes,
            1,
            NodeParams::default(),
            ElanParams {
                hw_barrier: hw,
                ..ElanParams::default()
            },
            TportsMpiParams::default(),
        );
        let t = Rc::new(Cell::new(0.0));
        for r in 0..nodes {
            let c = w.comm(r);
            let (t2, s) = (t.clone(), sim.clone());
            sim.spawn(format!("r{r}"), async move {
                for _ in 0..10 {
                    barrier(&c).await;
                }
                if c.rank() == 0 {
                    t2.set(s.now().as_us_f64() / 10.0);
                }
            });
        }
        sim.run().unwrap();
        t.get()
    }

    let hw = Some(Dur::from_us(4));
    let hw4 = barrier_time_us(4, hw);
    let hw32 = barrier_time_us(32, hw);
    let sw4 = barrier_time_us(4, None);
    let sw32 = barrier_time_us(32, None);
    // Hardware: flat in rank count, ~the configured pulse latency.
    assert!(
        (hw32 / hw4 - 1.0).abs() < 0.15,
        "hw barrier flat: {hw4} -> {hw32}"
    );
    assert!(hw4 > 3.9 && hw4 < 8.0, "hw barrier ~pulse latency: {hw4}");
    // Software: grows with log2(n).
    assert!(sw32 > sw4 * 1.5, "sw barrier grows: {sw4} -> {sw32}");
    // At 32 nodes hardware clearly wins.
    assert!(hw32 < sw32 * 0.5, "hw {hw32} vs sw {sw32}");
}
