//! Collective operations built over point-to-point, the way 2004-era
//! MPICH derivatives implemented them (neither stack's collectives are
//! hardware-accelerated in the paper's configurations).
//!
//! All collectives run in the reserved [`crate::CTX_COLL`] context so
//! their internal tags can never match application receives, and
//! successive collectives stay ordered by the transports'
//! non-overtaking guarantee.

use crate::{bytes_of_f64, empty, f64_of_bytes, Bytes, Communicator, RecvMsg, CTX_COLL};

/// Reduction operators supported by [`allreduce`] / [`reduce`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Sum,
    Max,
    Min,
}

impl Op {
    fn apply(self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len(), "reduction length mismatch");
        for (a, b) in acc.iter_mut().zip(other) {
            *a = match self {
                Op::Sum => *a + *b,
                Op::Max => a.max(*b),
                Op::Min => a.min(*b),
            };
        }
    }
}

const TAG_ALLGATHER: i64 = 6_000;
const TAG_BARRIER: i64 = 1_000;
const TAG_BCAST: i64 = 2_000;
const TAG_REDUCE: i64 = 3_000;
const TAG_GATHER: i64 = 4_000;
const TAG_ALLTOALL: i64 = 5_000;

async fn coll_send<C: Communicator>(c: &C, dst: usize, tag: i64, data: Bytes, bytes: u64) {
    let r = c
        .isend_full(
            dst,
            tag,
            CTX_COLL,
            data,
            bytes,
            crate::auto_region(3, tag, bytes),
        )
        .await;
    c.wait(r).await;
}

async fn coll_recv<C: Communicator>(c: &C, src: usize, tag: i64) -> RecvMsg {
    let r = c
        .irecv_full(
            Some(src),
            Some(tag),
            CTX_COLL,
            crate::auto_region(4, tag, 0),
        )
        .await;
    c.wait(r).await.expect("collective recv yields a message")
}

/// Start of a collective phase: the entry timestamp, captured only
/// when a tracer is attached (the everyday disabled path pays one
/// `Option` check).
fn coll_start<C: Communicator>(c: &C) -> Option<elanib_simcore::SimTime> {
    let sim = c.sim();
    sim.tracer().map(|_| sim.now())
}

/// End of a collective phase: count it and, when event tracing is on,
/// record the phase as a span on this rank's lane.
fn coll_end<C: Communicator>(c: &C, name: &'static str, t0: Option<elanib_simcore::SimTime>) {
    let Some(t0) = t0 else { return };
    let sim = c.sim();
    if let Some(tr) = sim.tracer() {
        tr.add("coll.count", 1);
        tr.span(
            "coll",
            name,
            t0.as_ps(),
            sim.now().as_ps(),
            c.rank() as u32,
            c.size() as i64,
        );
    }
}

/// Barrier: uses the transport's hardware barrier when available
/// (QsNet's barrier network — constant time at any scale), otherwise a
/// ⌈log₂ n⌉-round software dissemination barrier.
pub async fn barrier<C: Communicator>(c: &C) {
    let n = c.size();
    if n == 1 {
        return;
    }
    let t0 = coll_start(c);
    if c.hw_barrier().await {
        coll_end(c, "barrier(hw)", t0);
        return;
    }
    let me = c.rank();
    let mut k = 0u32;
    let mut dist = 1usize;
    while dist < n {
        let to = (me + dist) % n;
        let from = (me + n - dist) % n;
        let tag = TAG_BARRIER + k as i64;
        // Post the receive before sending so simultaneous rounds can't
        // deadlock.
        let rr = c
            .irecv_full(
                Some(from),
                Some(tag),
                CTX_COLL,
                crate::auto_region(4, tag, 8),
            )
            .await;
        let sr = c
            .isend_full(to, tag, CTX_COLL, empty(), 8, crate::auto_region(3, tag, 8))
            .await;
        c.wait(rr).await;
        c.wait(sr).await;
        dist *= 2;
        k += 1;
    }
    coll_end(c, "barrier", t0);
}

/// Binomial-tree broadcast from `root`; every rank returns the payload.
pub async fn bcast<C: Communicator>(c: &C, root: usize, data: Bytes, bytes: u64) -> Bytes {
    let n = c.size();
    if n == 1 {
        return data;
    }
    let t0 = coll_start(c);
    // Work in a rotated space where the root is rank 0.
    let me = (c.rank() + n - root) % n;
    let mut have = if me == 0 { Some(data) } else { None };

    // Highest power of two covering n.
    let mut top = 1usize;
    while top < n {
        top *= 2;
    }
    // Receivers learn their parent from their lowest set bit.
    if me != 0 {
        let lsb = me & me.wrapping_neg();
        let parent = (me - lsb + root) % n;
        let m = coll_recv(c, parent, TAG_BCAST).await;
        have = Some(m.data);
    }
    // Forward to children: me + d for each d below my lowest set bit
    // (or below top for the root), descending.
    let data = have.expect("bcast payload");
    let limit = if me == 0 { top } else { me & me.wrapping_neg() };
    let mut d = limit / 2;
    while d >= 1 {
        let child = me + d;
        if child < n {
            coll_send(c, (child + root) % n, TAG_BCAST, data.clone(), bytes).await;
        }
        if d == 1 {
            break;
        }
        d /= 2;
    }
    coll_end(c, "bcast", t0);
    data
}

/// Binomial-tree reduction to `root`. Returns `Some(result)` on the
/// root, `None` elsewhere.
pub async fn reduce<C: Communicator>(c: &C, root: usize, op: Op, x: &[f64]) -> Option<Vec<f64>> {
    let n = c.size();
    let me = (c.rank() + n - root) % n;
    let mut acc = x.to_vec();
    let bytes = (x.len() * 8) as u64;
    let t0 = coll_start(c);

    let mut d = 1usize;
    while d < n {
        if me.is_multiple_of(2 * d) {
            let child = me + d;
            if child < n {
                let m = coll_recv(c, (child + root) % n, TAG_REDUCE).await;
                op.apply(&mut acc, &f64_of_bytes(&m.data));
            }
        } else {
            let parent = me - d;
            coll_send(
                c,
                (parent + root) % n,
                TAG_REDUCE,
                bytes_of_f64(&acc),
                bytes,
            )
            .await;
            coll_end(c, "reduce", t0);
            return None;
        }
        d *= 2;
    }
    coll_end(c, "reduce", t0);
    Some(acc)
}

/// Reduce-to-root followed by broadcast — the classic MPICH allreduce
/// for modest vector sizes.
pub async fn allreduce<C: Communicator>(c: &C, op: Op, x: &[f64]) -> Vec<f64> {
    let bytes = (x.len() * 8) as u64;
    let t0 = coll_start(c);
    let out = match reduce(c, 0, op, x).await {
        Some(acc) => {
            let data = bcast(c, 0, bytes_of_f64(&acc), bytes).await;
            f64_of_bytes(&data)
        }
        None => {
            let data = bcast(c, 0, empty(), bytes).await;
            f64_of_bytes(&data)
        }
    };
    coll_end(c, "allreduce", t0);
    out
}

/// Gather one payload per rank to `root` (returned in rank order).
pub async fn gather<C: Communicator>(
    c: &C,
    root: usize,
    data: Bytes,
    bytes: u64,
) -> Option<Vec<Bytes>> {
    let n = c.size();
    let t0 = coll_start(c);
    let out = if c.rank() == root {
        let mut out: Vec<Option<Bytes>> = vec![None; n];
        out[root] = Some(data);
        for _ in 0..n - 1 {
            let r = c.irecv_full(None, Some(TAG_GATHER), CTX_COLL, 0).await;
            let m = c.wait(r).await.unwrap();
            out[m.src] = Some(m.data);
        }
        Some(out.into_iter().map(|o| o.expect("gather slot")).collect())
    } else {
        coll_send(c, root, TAG_GATHER, data, bytes).await;
        None
    };
    coll_end(c, "gather", t0);
    out
}

/// Allgather: every rank contributes one payload; all ranks return the
/// full vector indexed by rank. Recursive doubling for power-of-two
/// sizes (log₂ n rounds with doubling block sizes — the pattern NPB CG
/// uses to reassemble its iterate), ring otherwise.
pub async fn allgather<C: Communicator>(c: &C, mine: Bytes, per_rank_bytes: u64) -> Vec<Bytes> {
    let n = c.size();
    let me = c.rank();
    let mut out: Vec<Option<Bytes>> = vec![None; n];
    out[me] = Some(mine);
    if n == 1 {
        return out.into_iter().map(|o| o.unwrap()).collect();
    }
    let t0 = coll_start(c);
    if n.is_power_of_two() {
        // Recursive doubling: after round k, each rank holds the
        // aligned block of 2^(k+1) contributions containing itself.
        let mut have = 1usize;
        let mut base = me;
        let mut dist = 1usize;
        while dist < n {
            let partner = me ^ dist;
            let tag = TAG_ALLGATHER + dist as i64;
            // Serialize my block: (base, payloads...) — the payloads
            // travel as a concatenation with a tiny index header; for
            // the simulation we ship them as one message of the
            // combined modelled size and reconstruct from rank math.
            let block: Vec<Bytes> = (base..base + have)
                .map(|i| out[i].clone().expect("own block present"))
                .collect();
            let packed = pack(&block);
            let bytes = per_rank_bytes * have as u64;
            let m = if me < partner {
                coll_send(c, partner, tag, packed, bytes).await;
                coll_recv(c, partner, tag).await
            } else {
                let m = coll_recv(c, partner, tag).await;
                coll_send(c, partner, tag, packed, bytes).await;
                m
            };
            let theirs = unpack(&m.data);
            let their_base = base ^ dist;
            for (k, b) in theirs.into_iter().enumerate() {
                out[their_base + k] = Some(b);
            }
            base = base.min(their_base);
            have *= 2;
            dist *= 2;
        }
    } else {
        // Ring: n-1 steps, each forwarding the segment received last.
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut carry = out[me].clone().unwrap();
        let mut carry_idx = me;
        for step in 0..n - 1 {
            let tag = TAG_ALLGATHER + 100 + step as i64;
            let rr = c.irecv_full(Some(left), Some(tag), CTX_COLL, 0).await;
            let sr = c
                .isend_full(right, tag, CTX_COLL, carry.clone(), per_rank_bytes, 0)
                .await;
            let m = c.wait(rr).await.unwrap();
            c.wait(sr).await;
            carry = m.data;
            carry_idx = (carry_idx + n - 1) % n;
            out[carry_idx] = Some(carry.clone());
        }
    }
    coll_end(c, "allgather", t0);
    out.into_iter()
        .map(|o| o.expect("allgather slot missing"))
        .collect()
}

/// Concatenate payloads with u32 length prefixes (so unpack can split).
fn pack(blocks: &[Bytes]) -> Bytes {
    let mut v = Vec::new();
    for b in blocks {
        v.extend_from_slice(&(b.len() as u32).to_le_bytes());
        v.extend_from_slice(b);
    }
    std::rc::Rc::new(v)
}

fn unpack(data: &Bytes) -> Vec<Bytes> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 4 <= data.len() {
        let len = u32::from_le_bytes(data[i..i + 4].try_into().unwrap()) as usize;
        i += 4;
        out.push(std::rc::Rc::new(data[i..i + len].to_vec()));
        i += len;
    }
    out
}

/// Pairwise-exchange all-to-all: every rank sends `per_peer_bytes` to
/// every other rank. Returns the received payloads indexed by source.
pub async fn alltoall<C: Communicator>(
    c: &C,
    payloads: Vec<Bytes>,
    per_peer_bytes: u64,
) -> Vec<Bytes> {
    let n = c.size();
    assert_eq!(payloads.len(), n);
    let t0 = coll_start(c);
    let me = c.rank();
    let mut out: Vec<Bytes> = vec![empty(); n];
    out[me] = payloads[me].clone();
    for step in 1..n {
        let dst = (me + step) % n;
        let src = (me + n - step) % n;
        let rr = c
            .irecv_full(Some(src), Some(TAG_ALLTOALL + step as i64), CTX_COLL, 0)
            .await;
        let sr = c
            .isend_full(
                dst,
                TAG_ALLTOALL + step as i64,
                CTX_COLL,
                payloads[dst].clone(),
                per_peer_bytes,
                0,
            )
            .await;
        let m = c.wait(rr).await.unwrap();
        out[src] = m.data;
        c.wait(sr).await;
    }
    coll_end(c, "alltoall", t0);
    out
}
