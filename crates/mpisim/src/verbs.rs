//! The MVAPICH-0.9.2-style MPI implementation over InfiniBand verbs.
//!
//! Everything the Elan NIC does in hardware happens *here*, in host
//! software, on the application's CPU — and only while the application
//! is inside an MPI call:
//!
//! * **Eager protocol** (≤ [`VerbsParams::eager_threshold`]): the
//!   sender memcpys the payload into a pre-registered per-peer RDMA
//!   buffer slot and RDMA-writes it; the receiver discovers it by
//!   *polling*, matches it against the host posted-receive queue, and
//!   memcpys it out. Two copies, both across the shared memory bus.
//!   The paper notes the buffer pool grows with the number of
//!   processes; the poll sweep cost here grows with it
//!   ([`elanib_nic::Hca::poll_sweep_cost`]).
//! * **Rendezvous protocol** (larger): RTS → (receiver matches *when it
//!   next enters MPI*) → register receive buffer → CTS → sender (when
//!   *it* next enters MPI) registers and RDMA-writes the data carrying
//!   a FIN. Zero-copy, but registration costs flow through the
//!   pin-down cache — including the 4 MB thrash of Figure 1(b).
//! * **No independent progress** (§3.3.3): the progress engine runs in
//!   [`VerbsComm::progress_until`], i.e. only inside MPI calls. An RTS
//!   that arrives while this rank computes waits in the inbox, exactly
//!   like MVAPICH. This is the single most consequential line of the
//!   whole reproduction.

use elanib_simcore::FxHashMap;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use elanib_fabric::{faults::FaultPlan, ib_fabric_with, roce_fabric_with};
use elanib_nic::{Bytes, HcaParams, IbNet, RoceCc, RoceParams};
use elanib_nodesim::{Node, NodeParams};
use elanib_simcore::{Dur, Flag, Race2, Sim};

use crate::{Communicator, RecvMsg};

/// MVAPICH-style software constants.
#[derive(Clone, Copy, Debug)]
pub struct VerbsParams {
    /// Eager/rendezvous switch point. The paper observes the latency
    /// jump "between 1 KB and 2 KB messages" (§4.1): 1 KiB.
    pub eager_threshold: u64,
    /// Extra wire bytes per eager message (software envelope).
    pub eager_envelope: u64,
    /// Wire size of RTS/CTS control messages.
    pub ctl_bytes: u64,
    /// Host software cost to initiate a send (descriptor bookkeeping).
    pub send_setup: Dur,
    /// Flow-control bookkeeping per send: eager-buffer credit
    /// accounting and completion-queue reaping. This is the dominant
    /// per-message host cost that caps MVAPICH's small-message
    /// streaming rate (Figure 1(c)).
    pub credit_check: Dur,
    /// Host software cost to post a receive.
    pub recv_setup: Dur,
    /// Host matching cost: base + per queue entry scanned.
    pub match_base: Dur,
    pub match_per_entry: Dur,
    /// Host cost to process an incoming RTS (allocate rendezvous
    /// state, build the reply).
    pub rts_handle: Dur,
    /// Host cost to process a CTS and launch the data write.
    pub cts_handle: Dur,
    /// Host cost to retire a rendezvous FIN.
    pub fin_handle: Dur,
    /// Pin-down cache lookup/validation per rendezvous registration,
    /// charged even on a hit.
    pub reg_check: Dur,
    /// ABLATION (§7 of the paper): give MVAPICH an independent
    /// progress engine. When set, every arrival is handled immediately
    /// (as if by an interrupt-driven progress thread) at
    /// `async_progress_cost` per message, instead of waiting for the
    /// application to enter an MPI call. Off by default — MVAPICH
    /// 0.9.2 "does not support independent progress" (§3.3.3).
    pub async_progress: bool,
    /// Per-message interrupt/dispatch cost of the ablated progress
    /// thread (interrupt coalescing was poor in 2004; this is why
    /// implementations avoided it).
    pub async_progress_cost: Dur,
}

impl Default for VerbsParams {
    fn default() -> Self {
        VerbsParams {
            eager_threshold: 1024,
            eager_envelope: 48,
            ctl_bytes: 32,
            send_setup: Dur::from_ns(400),
            credit_check: Dur::from_ns(1500),
            recv_setup: Dur::from_ns(250),
            match_base: Dur::from_ns(150),
            match_per_entry: Dur::from_ns(20),
            rts_handle: Dur::from_us(3),
            cts_handle: Dur::from_us(3),
            fin_handle: Dur::from_ns(1500),
            reg_check: Dur::from_ns(800),
            async_progress: false,
            async_progress_cost: Dur::from_us(4),
        }
    }
}

/// Protocol messages carried by the HCA between ranks.
pub enum IbMsg {
    Eager {
        hdr: MsgHdr,
        data: Bytes,
        bytes: u64,
    },
    Rts {
        hdr: MsgHdr,
        bytes: u64,
        send_id: u64,
    },
    Cts {
        send_id: u64,
        recv_id: u64,
    },
    /// Rendezvous payload + completion marker in one wire transfer
    /// (the RDMA write into the registered user buffer, tailed by the
    /// FIN the receiver polls for).
    Fin {
        recv_id: u64,
        hdr: MsgHdr,
        data: Bytes,
        bytes: u64,
    },
}

#[derive(Clone, Copy, Debug)]
pub struct MsgHdr {
    pub src: usize,
    pub dst: usize,
    pub tag: i64,
    pub ctx: u32,
}

#[derive(Clone, Copy)]
struct Sel {
    src: Option<usize>,
    tag: Option<i64>,
    ctx: u32,
}

impl Sel {
    fn matches(&self, h: &MsgHdr) -> bool {
        self.ctx == h.ctx
            && self.src.is_none_or(|s| s == h.src)
            && self.tag.is_none_or(|t| t == h.tag)
    }
}

struct PostedRecv {
    sel: Sel,
    recv_id: u64,
    region: u64,
}

enum UnexpKind {
    Eager { data: Bytes, bytes: u64 },
    Rts { bytes: u64, send_id: u64 },
}

struct UnexpMsg {
    hdr: MsgHdr,
    kind: UnexpKind,
}

/// Completion slot for one posted receive (public only because it
/// appears inside [`VerbsReq`]).
pub struct RecvSlot {
    done: Flag,
    result: RefCell<Option<RecvMsg>>,
}

struct SendPending {
    hdr: MsgHdr,
    data: Bytes,
    bytes: u64,
    done: Flag,
}

/// Host-software state of one MPI process.
struct RankState {
    posted: RefCell<Vec<PostedRecv>>,
    unexpected: RefCell<VecDeque<UnexpMsg>>,
    recvs: RefCell<FxHashMap<u64, Rc<RecvSlot>>>,
    sends: RefCell<FxHashMap<u64, SendPending>>,
    next_id: Cell<u64>,
    /// Stats mirrored by tests and EXPERIMENTS.md.
    unexpected_count: Cell<u64>,
}

impl RankState {
    fn new() -> RankState {
        RankState {
            posted: RefCell::new(Vec::new()),
            unexpected: RefCell::new(VecDeque::new()),
            recvs: RefCell::new(FxHashMap::default()),
            sends: RefCell::new(FxHashMap::default()),
            next_id: Cell::new(1),
            unexpected_count: Cell::new(0),
        }
    }

    fn alloc_id(&self) -> u64 {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        id
    }
}

/// One InfiniBand cluster running one MPI job.
pub struct IbWorld {
    pub sim: Sim,
    pub net: Rc<IbNet<IbMsg>>,
    pub nodes: Vec<Rc<Node>>,
    pub params: VerbsParams,
    ranks: Vec<Rc<RankState>>,
    ppn: usize,
}

impl IbWorld {
    pub fn new(sim: &Sim, n_nodes: usize, ppn: usize) -> Rc<IbWorld> {
        IbWorld::with_params(
            sim,
            n_nodes,
            ppn,
            NodeParams::default(),
            HcaParams::default(),
            VerbsParams::default(),
        )
    }

    pub fn with_params(
        sim: &Sim,
        n_nodes: usize,
        ppn: usize,
        node_params: NodeParams,
        hca_params: HcaParams,
        mpi_params: VerbsParams,
    ) -> Rc<IbWorld> {
        IbWorld::with_faults(
            sim,
            n_nodes,
            ppn,
            node_params,
            hca_params,
            mpi_params,
            None,
            None,
        )
    }

    /// [`IbWorld::with_params`] plus the full [`crate::NetConfig`]
    /// bundle (fault plan included).
    pub fn with_config(
        sim: &Sim,
        n_nodes: usize,
        ppn: usize,
        cfg: &crate::NetConfig,
    ) -> Rc<IbWorld> {
        IbWorld::with_faults(
            sim,
            n_nodes,
            ppn,
            cfg.node,
            cfg.hca,
            cfg.verbs,
            cfg.faults.clone(),
            None,
        )
    }

    /// [`IbWorld::with_config`] over RoCEv2 (EXTENSION): the same
    /// MVAPICH software stack and HCA timing, but the fabric is 10GbE
    /// and every post flows through the congestion-control engine for
    /// `roce.mode`. A `roce.lossy` rate without an explicit fault plan
    /// synthesizes a seeded loss plan (classic lossy-Ethernet RoCE:
    /// drops surface as IB-style retransmits).
    pub fn with_config_roce(
        sim: &Sim,
        n_nodes: usize,
        ppn: usize,
        cfg: &crate::NetConfig,
        roce: RoceParams,
    ) -> Rc<IbWorld> {
        IbWorld::with_faults(
            sim,
            n_nodes,
            ppn,
            cfg.node,
            cfg.hca,
            cfg.verbs,
            cfg.faults.clone(),
            Some(roce),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn with_faults(
        sim: &Sim,
        n_nodes: usize,
        ppn: usize,
        node_params: NodeParams,
        hca_params: HcaParams,
        mpi_params: VerbsParams,
        faults: Option<std::sync::Arc<FaultPlan>>,
        roce: Option<RoceParams>,
    ) -> Rc<IbWorld> {
        let nodes: Vec<_> = (0..n_nodes).map(|i| Node::new(i, node_params)).collect();
        let (fabric, cc) = match roce {
            None => (Rc::new(ib_fabric_with(n_nodes, faults)), None),
            Some(rp) => {
                let faults = faults.or_else(|| {
                    rp.lossy.map(|rate| {
                        let spec = format!("loss={rate},seed={}", rp.seed);
                        std::sync::Arc::new(
                            FaultPlan::parse(&spec).expect("lossy RoCE plan spec is well-formed"),
                        )
                    })
                });
                (
                    Rc::new(roce_fabric_with(n_nodes, faults)),
                    Some(RoceCc::new(rp, n_nodes)),
                )
            }
        };
        let net = Rc::new(IbNet::new_with_cc(&nodes, fabric, ppn, hca_params, cc));
        let ranks = (0..n_nodes * ppn)
            .map(|_| Rc::new(RankState::new()))
            .collect();
        let w = Rc::new(IbWorld {
            sim: sim.clone(),
            net,
            nodes,
            params: mpi_params,
            ranks,
            ppn,
        });
        if mpi_params.async_progress {
            // ABLATION (§7): interrupt-driven progress. Each arrival
            // dispatches a handler immediately, charged at
            // `async_progress_cost`, regardless of whether the
            // application is inside MPI. Weak reference breaks the
            // world -> net -> hca -> hook -> world cycle.
            for r in 0..w.n_ranks() {
                let weak = Rc::downgrade(&w);
                w.net.hca(r).set_arrival_hook(Box::new(move |sim, _src, m| {
                    let Some(world) = weak.upgrade() else { return };
                    let comm = world.comm(r);
                    let cost = world.params.async_progress_cost;
                    sim.spawn("ib-intr", async move {
                        comm.charge(cost).await;
                        comm.handle(m).await;
                    });
                }));
            }
        }
        w
    }

    pub fn n_ranks(&self) -> usize {
        self.net.n_ranks()
    }

    /// Run statistics: traffic volumes and software-visible events.
    pub fn stats(&self) -> crate::WorldStats {
        let (mut hits, mut misses, mut evictions) = (0, 0, 0);
        let mut unexpected = 0;
        for r in 0..self.n_ranks() {
            let (h, m, e) = self.net.hca(r).regcache_stats();
            hits += h;
            misses += m;
            evictions += e;
            unexpected += self.ranks[r].unexpected_count.get();
        }
        crate::WorldStats {
            wire_bytes: self.net.fabric.total_link_bytes(),
            nic_messages: self.net.total_messages(),
            unexpected,
            reg_hits: hits,
            reg_misses: misses,
            reg_evictions: evictions,
        }
    }

    pub fn comm(self: &Rc<Self>, rank: usize) -> VerbsComm {
        assert!(rank < self.n_ranks());
        VerbsComm {
            w: self.clone(),
            rank,
        }
    }

    /// Spawn one task per rank. Each rank first pays the
    /// connection-oriented price of InfiniBand: full queue-pair setup
    /// with every remote peer at init (§3.3.1), as MVAPICH 0.9.2 did.
    pub fn spawn_ranks<F, Fut>(self: &Rc<Self>, name: &str, f: F)
    where
        F: Fn(VerbsComm) -> Fut,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        for r in 0..self.n_ranks() {
            let comm = self.comm(r);
            let setup = self.net.connection_setup_time(r);
            let sim = self.sim.clone();
            let fut = f(comm.clone());
            self.sim
                .spawn_fmt(format_args!("{name}[ib:{r}]"), async move {
                    comm.node().cpu_work(&sim, comm.cpu(), setup).await;
                    fut.await;
                });
        }
    }
}

/// Rank-local communicator handle for the InfiniBand world.
#[derive(Clone)]
pub struct VerbsComm {
    w: Rc<IbWorld>,
    rank: usize,
}

/// Outstanding verbs-MPI operation.
pub enum VerbsReq {
    Send(Flag),
    Recv(Rc<RecvSlot>),
}

impl VerbsComm {
    fn cpu(&self) -> usize {
        self.rank % self.w.ppn
    }
    fn node(&self) -> &Rc<Node> {
        self.w.net.node_of(self.rank)
    }
    fn st(&self) -> &Rc<RankState> {
        &self.w.ranks[self.rank]
    }
    pub fn world(&self) -> &Rc<IbWorld> {
        &self.w
    }
    /// Messages that arrived before a matching receive was posted.
    pub fn unexpected_count(&self) -> u64 {
        self.st().unexpected_count.get()
    }

    /// Host MPI processing is cache- and memory-intensive (buffer
    /// copies, queue walks, completion polling), so it both occupies
    /// this CPU and dilates under a busy sibling — the host-load /
    /// cache-pollution effect the paper blames for InfiniBand's 2 PPN
    /// behaviour (§4.2.1).
    ///
    /// Under the async-progress ablation, MPI processing runs on the
    /// progress engine (deployments pinned it to the spare core), so
    /// it costs latency but does not contend with application compute.
    async fn charge(&self, d: Dur) {
        if d.is_zero() {
            return;
        }
        if self.w.params.async_progress {
            self.node().cpu_work(&self.w.sim, self.cpu(), d).await;
        } else {
            self.node().compute(&self.w.sim, self.cpu(), d, 0.5).await;
        }
    }

    /// One host-side matching pass over `scanned` queue entries.
    fn match_cost(&self, scanned: usize) -> Dur {
        self.w.params.match_base
            + Dur::from_ps(self.w.params.match_per_entry.as_ps() * scanned as u64)
    }

    /// THE progress engine. Runs only while this rank is inside an MPI
    /// call; drains the HCA inbox, handling each protocol message on
    /// the host CPU, until `done` is set.
    async fn progress_until(&self, done: Flag) {
        let hca = self.w.net.hca(self.rank).clone();
        loop {
            // Transport retries are exhausted: the QP is in the error
            // state and every outstanding work request is flushed.
            // MVAPICH 0.9.2 had no recovery path for this — the job
            // dies with the (typed) transport error.
            if let Some(e) = hca.qp_error() {
                panic!("InfiniBand QP error at rank {}: {e}", self.rank);
            }
            // Drain whatever has already landed.
            while let Some((_src, m)) = hca.inbox.try_recv() {
                self.charge(hca.params.poll_detect).await;
                self.handle(m).await;
            }
            if done.is_set() {
                return;
            }
            // Nothing pending and not done: block on the next arrival.
            // (A real implementation spins; the spin occupies only this
            // rank's own CPU, so the block is time-equivalent.)
            // The wait may race with our own completion (e.g. a send
            // completing via local DMA) or a QP failure. Poll order is
            // message, then done, then error — deterministic, and
            // identical to the pre-fault behaviour when no plan is
            // active (the error flag never fires then).
            let race = elanib_simcore::race2(
                hca.inbox.recv(),
                elanib_simcore::race2(done.wait(), hca.qp_error_flag.wait()),
            );
            match race.await {
                Race2::First((_src, m)) => {
                    // One poll sweep across all per-peer buffers to
                    // find it (cost scales with connections), plus the
                    // detection itself.
                    self.charge(hca.poll_sweep_cost()).await;
                    self.charge(hca.params.poll_detect).await;
                    self.handle(m).await;
                }
                Race2::Second(Race2::First(())) => return, // done flag fired
                Race2::Second(Race2::Second(())) => continue, // loop top surfaces the QP error
            }
        }
    }

    /// Host-side handling of one incoming protocol message.
    ///
    /// Matching decisions commit *atomically* (no await between the
    /// posted-queue lookup and the unexpected-queue park): with the
    /// async-progress ablation this runs concurrently with the rank's
    /// own MPI calls, and a decision spanning an await point can lose
    /// a message to a receive posted in between.
    async fn handle(&self, m: IbMsg) {
        match m {
            IbMsg::Eager { hdr, data, bytes } => {
                let (matched, scanned) = {
                    let (matched, scanned) = self.match_posted(&hdr);
                    if matched.is_none() {
                        let st = self.st();
                        st.unexpected_count.set(st.unexpected_count.get() + 1);
                        st.unexpected.borrow_mut().push_back(UnexpMsg {
                            hdr,
                            kind: UnexpKind::Eager {
                                data: data.clone(),
                                bytes,
                            },
                        });
                        self.trace_unexpected();
                    }
                    (matched, scanned)
                };
                self.charge(self.match_cost(scanned)).await;
                if let Some(p) = matched {
                    // Copy out of the eager RDMA buffer into the user
                    // buffer.
                    self.node().host_copy(&self.w.sim, bytes).await;
                    self.complete_recv(p.recv_id, hdr, data, bytes);
                }
            }
            IbMsg::Rts {
                hdr,
                bytes,
                send_id,
            } => {
                let (matched, scanned) = {
                    let (matched, scanned) = self.match_posted(&hdr);
                    if matched.is_none() {
                        let st = self.st();
                        st.unexpected_count.set(st.unexpected_count.get() + 1);
                        st.unexpected.borrow_mut().push_back(UnexpMsg {
                            hdr,
                            kind: UnexpKind::Rts { bytes, send_id },
                        });
                        self.trace_unexpected();
                    }
                    (matched, scanned)
                };
                self.charge(self.match_cost(scanned) + self.w.params.rts_handle)
                    .await;
                if let Some(p) = matched {
                    self.rendezvous_reply(hdr, bytes, send_id, p).await;
                }
            }
            IbMsg::Cts { send_id, recv_id } => {
                self.charge(self.w.params.cts_handle).await;
                let pending = self
                    .st()
                    .sends
                    .borrow_mut()
                    .remove(&send_id)
                    .expect("CTS for unknown send");
                // RDMA-write the payload with the FIN; the send request
                // completes when the source DMA drains.
                let h = self.w.net.post(
                    &self.w.sim,
                    self.rank,
                    pending.hdr.dst,
                    IbMsg::Fin {
                        recv_id,
                        hdr: pending.hdr,
                        data: pending.data,
                        bytes: pending.bytes,
                    },
                    pending.bytes,
                );
                let done = pending.done;
                let sim = self.w.sim.clone();
                sim.clone().spawn("ib-send-complete", async move {
                    h.local.wait().await;
                    done.set();
                });
            }
            IbMsg::Fin {
                recv_id,
                hdr,
                data,
                bytes,
            } => {
                // Data already landed in the registered user buffer
                // (zero copy); retire the request.
                self.charge(self.w.params.fin_handle).await;
                self.complete_recv(recv_id, hdr, data, bytes);
            }
        }
    }

    /// Account one unexpected arrival: count plus the host-software
    /// queue depth (the §4 unexpected-queue growth MVAPICH pays to
    /// walk on every receive).
    fn trace_unexpected(&self) {
        if let Some(tr) = self.w.sim.tracer() {
            tr.add("mpi.unexpected", 1);
            tr.gauge(
                "mpi.unexpected_depth",
                self.st().unexpected.borrow().len() as i64,
            );
        }
    }

    /// Receiver side of the rendezvous: register the user buffer and
    /// send CTS.
    async fn rendezvous_reply(&self, _hdr: MsgHdr, bytes: u64, send_id: u64, p: PostedRecv) {
        let reg = self
            .w
            .net
            .hca(self.rank)
            .register_traced(&self.w.sim, p.region, bytes);
        self.charge(self.w.params.reg_check + reg).await;
        let src = _hdr.src;
        let _ = self.w.net.post(
            &self.w.sim,
            self.rank,
            src,
            IbMsg::Cts {
                send_id,
                recv_id: p.recv_id,
            },
            self.w.params.ctl_bytes,
        );
    }

    /// Find and remove the first posted receive matching `hdr`.
    /// Returns the entry and the number of queue entries scanned.
    fn match_posted(&self, hdr: &MsgHdr) -> (Option<PostedRecv>, usize) {
        let mut posted = self.st().posted.borrow_mut();
        match posted.iter().position(|p| p.sel.matches(hdr)) {
            Some(i) => (Some(posted.remove(i)), i + 1),
            None => {
                let n = posted.len();
                (None, n)
            }
        }
    }

    fn complete_recv(&self, recv_id: u64, hdr: MsgHdr, data: Bytes, bytes: u64) {
        let slot = self
            .st()
            .recvs
            .borrow_mut()
            .remove(&recv_id)
            .expect("completion for unknown recv");
        *slot.result.borrow_mut() = Some(RecvMsg {
            src: hdr.src,
            tag: hdr.tag,
            bytes,
            data,
        });
        slot.done.set();
    }
}

impl Communicator for VerbsComm {
    type Req = VerbsReq;

    fn rank(&self) -> usize {
        self.rank
    }
    fn size(&self) -> usize {
        self.w.n_ranks()
    }
    fn sim(&self) -> Sim {
        self.w.sim.clone()
    }

    async fn isend_full(
        &self,
        dst: usize,
        tag: i64,
        ctx: u32,
        data: Bytes,
        bytes: u64,
        region: u64,
    ) -> VerbsReq {
        let p = self.w.params;
        self.charge(p.send_setup + p.credit_check).await;
        let hdr = MsgHdr {
            src: self.rank,
            dst,
            tag,
            ctx,
        };
        if bytes <= p.eager_threshold {
            // Eager: copy into the pre-registered per-peer slot, ring
            // the doorbell, done (buffered-send semantics).
            if let Some(tr) = self.w.sim.tracer() {
                tr.add("mpi.eager_sends", 1);
            }
            self.node().host_copy(&self.w.sim, bytes).await;
            self.charge(self.w.net.params.doorbell).await;
            let _ = self.w.net.post(
                &self.w.sim,
                self.rank,
                dst,
                IbMsg::Eager { hdr, data, bytes },
                bytes + p.eager_envelope,
            );
            let done = Flag::new();
            done.set();
            VerbsReq::Send(done)
        } else {
            // Rendezvous: register the send buffer, ship an RTS, and
            // wait for the CTS (processed only inside MPI calls).
            if let Some(tr) = self.w.sim.tracer() {
                tr.add("mpi.rdv_sends", 1);
            }
            let reg = self
                .w
                .net
                .hca(self.rank)
                .register_traced(&self.w.sim, region, bytes);
            self.charge(p.reg_check + reg).await;
            self.charge(self.w.net.params.doorbell).await;
            let st = self.st();
            let send_id = st.alloc_id();
            let done = Flag::new();
            st.sends.borrow_mut().insert(
                send_id,
                SendPending {
                    hdr,
                    data,
                    bytes,
                    done: done.clone(),
                },
            );
            let _ = self.w.net.post(
                &self.w.sim,
                self.rank,
                dst,
                IbMsg::Rts {
                    hdr,
                    bytes,
                    send_id,
                },
                p.ctl_bytes,
            );
            VerbsReq::Send(done)
        }
    }

    async fn irecv_full(
        &self,
        src: Option<usize>,
        tag: Option<i64>,
        ctx: u32,
        region: u64,
    ) -> VerbsReq {
        let p = self.w.params;
        self.charge(p.recv_setup).await;
        let sel = Sel { src, tag, ctx };
        let st = self.st();
        let recv_id = st.alloc_id();
        let slot = Rc::new(RecvSlot {
            done: Flag::new(),
            result: RefCell::new(None),
        });
        st.recvs.borrow_mut().insert(recv_id, slot.clone());

        // Charge the host matching cost for the sweep *before* acting,
        // then scan-and-commit without awaits in between: with the
        // async-progress ablation the handler runs concurrently with
        // this task, so the queue may change across any await point.
        let scan_est = st.unexpected.borrow().len();
        self.charge(self.match_cost(scan_est)).await;
        let claimed = {
            let mut unexp = st.unexpected.borrow_mut();
            match unexp.iter().position(|u| sel.matches(&u.hdr)) {
                Some(i) => Some(unexp.remove(i).unwrap()),
                None => {
                    st.posted.borrow_mut().push(PostedRecv {
                        sel,
                        recv_id,
                        region,
                    });
                    if let Some(tr) = self.w.sim.tracer() {
                        tr.gauge("mpi.posted_depth", st.posted.borrow().len() as i64);
                    }
                    None
                }
            }
        };
        if let Some(u) = claimed {
            match u.kind {
                UnexpKind::Eager { data, bytes } => {
                    self.node().host_copy(&self.w.sim, bytes).await;
                    self.complete_recv(recv_id, u.hdr, data, bytes);
                }
                UnexpKind::Rts { bytes, send_id } => {
                    let posted = PostedRecv {
                        sel,
                        recv_id,
                        region,
                    };
                    self.rendezvous_reply(u.hdr, bytes, send_id, posted).await;
                }
            }
        }
        VerbsReq::Recv(slot)
    }

    async fn compute(&self, dur: Dur, mem_intensity: f64) {
        self.node()
            .compute(&self.w.sim, self.cpu(), dur, mem_intensity)
            .await;
    }

    async fn wait(&self, req: VerbsReq) -> Option<RecvMsg> {
        match req {
            VerbsReq::Send(done) => {
                self.progress_until(done).await;
                None
            }
            VerbsReq::Recv(slot) => {
                self.progress_until(slot.done.clone()).await;
                let m = slot.result.borrow_mut().take();
                Some(m.expect("recv completed without result"))
            }
        }
    }
}
