//! # elanib-mpi — the MPI layer
//!
//! An MPI-1-flavoured message-passing interface with two transports
//! that mirror the software stacks the paper benchmarked:
//!
//! * [`verbs::IbWorld`] — an MVAPICH-0.9.2-style implementation over
//!   the InfiniBand HCA model: eager copies through pre-registered
//!   RDMA buffers, host-side tag matching, an explicit
//!   rendezvous (RTS/CTS/FIN) protocol with memory registration, and —
//!   crucially — **progress only inside MPI calls**.
//! * [`tports::ElanWorld`] — a Quadrics-style implementation over
//!   Tports: the shim is a few lines because matching, buffering, and
//!   rendezvous all run on the NIC. The size difference between
//!   `verbs.rs` and `tports.rs` *is* §3 of the paper.
//!
//! Applications program against the [`Communicator`] trait, so the same
//! `async fn` rank program runs unchanged on either network.
//!
//! ## Semantics implemented
//!
//! * standard-mode send/recv, non-blocking isend/irecv + wait/waitall
//! * tag and source wildcards, non-overtaking matching order
//! * communicator contexts (used internally to isolate collectives)
//! * collectives in [`collectives`]: barrier, broadcast, reduce,
//!   allreduce, gather, all-to-all — implemented over point-to-point
//!   exactly as the 2004-era MPICH derivatives did
//!
//! ## Timing vs. data
//!
//! Every message carries both a real payload ([`Bytes`], for
//! application correctness) and a modelled size in bytes (for timing).
//! They usually agree, but scaled-down application proxies may carry a
//! small real payload while charging full-scale wire time.

use std::future::Future;
use std::rc::Rc;

use elanib_simcore::Sim;

pub mod collectives;
pub mod runner;
pub mod subcomm;
pub mod tports;
pub mod verbs;

pub use elanib_nic::{BackendKind, Bytes, RoceMode, RoceParams};
pub use runner::{
    run_job, run_job_configured, run_scenario, run_scenario_on, JobSpec, NetConfig, Network,
    RankProgram, ScenarioRun,
};
pub use subcomm::SubComm;

/// Aggregate run statistics from a world (see `IbWorld::stats` /
/// `ElanWorld::stats`).
#[derive(Clone, Copy, Debug, Default)]
pub struct WorldStats {
    /// Bytes carried across all fabric links (wire bytes incl. headers).
    pub wire_bytes: u64,
    /// Wire transactions injected by all NICs.
    pub nic_messages: u64,
    /// Messages that arrived before a matching receive was posted.
    pub unexpected: u64,
    /// Registration-cache hits (InfiniBand; Elan only under ablation).
    pub reg_hits: u64,
    pub reg_misses: u64,
    pub reg_evictions: u64,
}

/// A completed receive.
#[derive(Clone, Debug)]
pub struct RecvMsg {
    pub src: usize,
    pub tag: i64,
    pub bytes: u64,
    pub data: Bytes,
}

/// Context id of the application's world communicator.
pub const CTX_WORLD: u32 = 0;
/// Context id reserved for library-internal collectives.
pub const CTX_COLL: u32 = 1;

/// The programming interface applications use; implemented by
/// [`verbs::VerbsComm`] and [`tports::TportsComm`].
pub trait Communicator: Clone + 'static {
    /// Transport-specific request handle for outstanding operations.
    type Req: 'static;

    fn rank(&self) -> usize;
    fn size(&self) -> usize;
    fn sim(&self) -> Sim;

    /// Non-blocking send: returns once the operation is *posted* (host
    /// costs charged). `region` identifies the application buffer for
    /// registration-cache purposes.
    fn isend_full(
        &self,
        dst: usize,
        tag: i64,
        ctx: u32,
        data: Bytes,
        bytes: u64,
        region: u64,
    ) -> impl Future<Output = Self::Req>;

    /// Non-blocking receive (`None` selectors are MPI wildcards).
    fn irecv_full(
        &self,
        src: Option<usize>,
        tag: Option<i64>,
        ctx: u32,
        region: u64,
    ) -> impl Future<Output = Self::Req>;

    /// Block until the request completes; receives yield the message.
    fn wait(&self, req: Self::Req) -> impl Future<Output = Option<RecvMsg>>;

    /// Run an application compute phase of nominal length `dur` on this
    /// rank's CPU. Routed through the node model so a busy sibling CPU
    /// dilates it (`mem_intensity` ∈ [0,1] — how memory-bound the
    /// kernel is). **No MPI progress happens during compute** — on the
    /// verbs transport that is the whole point.
    fn compute(&self, dur: elanib_simcore::Dur, mem_intensity: f64) -> impl Future<Output = ()>;

    /// Hardware-assisted full-communicator barrier, if this transport
    /// offers one (QsNet's barrier network). Returns `true` if the
    /// barrier was performed in hardware; `false` means the caller must
    /// fall back to the software algorithm. Only meaningful on the
    /// world communicator (sub-communicators always fall back).
    fn hw_barrier(&self) -> impl Future<Output = bool> {
        async { false }
    }
}

/// Deterministic buffer identity for callers that don't manage regions
/// explicitly: the same (direction, tag, size-class) reuses the same
/// logical buffer — which is what typical applications do, and what
/// makes registration caches effective.
pub fn auto_region(dir: u64, tag: i64, bytes: u64) -> u64 {
    let class = 64 - bytes.max(1).leading_zeros() as u64;
    (dir << 56) ^ ((tag as u64 & 0xffff_ffff) << 8) ^ class
}

/// Non-blocking send on the world context with an auto-derived region.
pub async fn isend<C: Communicator>(
    c: &C,
    dst: usize,
    tag: i64,
    data: Bytes,
    bytes: u64,
) -> C::Req {
    c.isend_full(dst, tag, CTX_WORLD, data, bytes, auto_region(1, tag, bytes))
        .await
}

/// Non-blocking receive on the world context.
pub async fn irecv<C: Communicator>(c: &C, src: Option<usize>, tag: Option<i64>) -> C::Req {
    c.irecv_full(src, tag, CTX_WORLD, auto_region(2, tag.unwrap_or(0), 0))
        .await
}

/// Blocking standard-mode send.
pub async fn send<C: Communicator>(c: &C, dst: usize, tag: i64, data: Bytes, bytes: u64) {
    let r = isend(c, dst, tag, data, bytes).await;
    c.wait(r).await;
}

/// Blocking receive.
pub async fn recv<C: Communicator>(c: &C, src: Option<usize>, tag: Option<i64>) -> RecvMsg {
    let r = irecv(c, src, tag).await;
    c.wait(r).await.expect("recv request must yield a message")
}

/// Combined send+receive that cannot deadlock against a symmetric
/// partner (posts the receive first, then the send, then waits both).
pub async fn sendrecv<C: Communicator>(
    c: &C,
    dst: usize,
    stag: i64,
    data: Bytes,
    bytes: u64,
    src: usize,
    rtag: i64,
) -> RecvMsg {
    let rr = irecv(c, Some(src), Some(rtag)).await;
    let sr = isend(c, dst, stag, data, bytes).await;
    let m = c.wait(rr).await.expect("sendrecv must yield a message");
    c.wait(sr).await;
    m
}

/// Wait on every request, in order (progress is shared, so ordering
/// does not serialize the underlying transfers).
pub async fn waitall<C: Communicator>(c: &C, reqs: Vec<C::Req>) -> Vec<Option<RecvMsg>> {
    let mut out = Vec::with_capacity(reqs.len());
    for r in reqs {
        out.push(c.wait(r).await);
    }
    out
}

/// Encode a float slice as a payload (little-endian).
pub fn bytes_of_f64(xs: &[f64]) -> Bytes {
    // Sized-then-filled (rather than repeated extend_from_slice) so
    // the encode compiles to one allocation and a straight copy; this
    // runs once per simulated exchange on every CG/MD iteration.
    let mut v = vec![0u8; xs.len() * 8];
    for (c, x) in v.chunks_exact_mut(8).zip(xs) {
        c.copy_from_slice(&x.to_le_bytes());
    }
    Rc::new(v)
}

/// Decode a payload produced by [`bytes_of_f64`].
pub fn f64_of_bytes(b: &Bytes) -> Vec<f64> {
    f64s_of_bytes(b).collect()
}

/// Streaming decode of a [`bytes_of_f64`] payload — same values as
/// [`f64_of_bytes`] without the intermediate `Vec`, for accumulate /
/// copy-into consumers on per-iteration exchange paths.
pub fn f64s_of_bytes(b: &[u8]) -> impl Iterator<Item = f64> + '_ {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
}

/// Empty payload for control-style messages.
pub fn empty() -> Bytes {
    elanib_nic::no_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_payload_round_trip() {
        let xs = [1.5, -2.25, 0.0, f64::MAX];
        let b = bytes_of_f64(&xs);
        assert_eq!(b.len(), 32);
        assert_eq!(f64_of_bytes(&b), xs);
    }

    #[test]
    fn auto_region_distinguishes_direction_tag_and_size_class() {
        let a = auto_region(1, 5, 1024);
        assert_eq!(a, auto_region(1, 5, 1024));
        assert_ne!(a, auto_region(2, 5, 1024));
        assert_ne!(a, auto_region(1, 6, 1024));
        assert_ne!(a, auto_region(1, 5, 1_000_000));
        // Same size class: reuses the region (same logical buffer).
        assert_eq!(auto_region(1, 5, 1000), auto_region(1, 5, 800));
    }
}
