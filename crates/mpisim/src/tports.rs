//! The Quadrics MPI implementation: a thin shim over Tports.
//!
//! Quadrics' MPI "uses Tports as its underlying transport layer"
//! (§3.1); because the NIC does matching, unexpected buffering, and
//! rendezvous, the host-side MPI is little more than descriptor posting
//! and completion waiting. The brevity of this file relative to
//! `verbs.rs` is the architectural point the paper makes.

use std::rc::Rc;

use std::cell::RefCell;

use elanib_fabric::{elan_fabric_with, faults::FaultPlan};
use elanib_nic::{
    Bytes, ElanNet, ElanParams, HcaParams, RegCache, TportHeader, TportRecvHandle, TportSel,
};
use elanib_nodesim::{Node, NodeParams};
use elanib_simcore::{Dur, Flag, Sim};

use crate::{Communicator, RecvMsg};

/// Host-side software constants for the Quadrics MPI shim.
#[derive(Clone, Copy, Debug)]
pub struct TportsMpiParams {
    /// MPI-library bookkeeping per call, on top of the Tports PIO.
    pub shim_overhead: Dur,
    /// ABLATION (§7 / §3.3.2): charge Elan the *explicit* host-based
    /// memory registration that InfiniBand pays, instead of its real
    /// NIC-MMU implicit translation. Quantifies how much of the gap
    /// registration alone explains. Off by default.
    pub explicit_registration: bool,
}

impl Default for TportsMpiParams {
    fn default() -> Self {
        TportsMpiParams {
            shim_overhead: Dur::from_ns(80),
            explicit_registration: false,
        }
    }
}

/// One Elan-4 cluster running one MPI job.
pub struct ElanWorld {
    pub sim: Sim,
    pub net: Rc<ElanNet>,
    pub nodes: Vec<Rc<Node>>,
    pub params: TportsMpiParams,
    ppn: usize,
    /// Only populated for the explicit-registration ablation.
    regcaches: Vec<RefCell<RegCache>>,
    reg_params: HcaParams,
    /// Hardware-barrier rendezvous state (EXTENSION; see
    /// `ElanParams::hw_barrier`).
    hw_barrier: RefCell<HwBarrierState>,
}

#[derive(Default)]
struct HwBarrierState {
    arrived: usize,
    waiting: Vec<Flag>,
}

impl ElanWorld {
    pub fn new(sim: &Sim, n_nodes: usize, ppn: usize) -> Rc<ElanWorld> {
        ElanWorld::with_params(
            sim,
            n_nodes,
            ppn,
            NodeParams::default(),
            ElanParams::default(),
            TportsMpiParams::default(),
        )
    }

    pub fn with_params(
        sim: &Sim,
        n_nodes: usize,
        ppn: usize,
        node_params: NodeParams,
        elan_params: ElanParams,
        mpi_params: TportsMpiParams,
    ) -> Rc<ElanWorld> {
        ElanWorld::with_faults(
            sim,
            n_nodes,
            ppn,
            node_params,
            elan_params,
            mpi_params,
            None,
        )
    }

    /// [`ElanWorld::with_params`] plus the full [`crate::NetConfig`]
    /// bundle (fault plan included).
    pub fn with_config(
        sim: &Sim,
        n_nodes: usize,
        ppn: usize,
        cfg: &crate::NetConfig,
    ) -> Rc<ElanWorld> {
        ElanWorld::with_faults(
            sim,
            n_nodes,
            ppn,
            cfg.node,
            cfg.elan,
            cfg.tports,
            cfg.faults.clone(),
        )
    }

    fn with_faults(
        sim: &Sim,
        n_nodes: usize,
        ppn: usize,
        node_params: NodeParams,
        elan_params: ElanParams,
        mpi_params: TportsMpiParams,
        faults: Option<std::sync::Arc<FaultPlan>>,
    ) -> Rc<ElanWorld> {
        let nodes: Vec<_> = (0..n_nodes).map(|i| Node::new(i, node_params)).collect();
        let fabric = Rc::new(elan_fabric_with(n_nodes, faults));
        let net = ElanNet::new(&nodes, fabric, ppn, elan_params);
        let reg_params = HcaParams::default();
        let regcaches = (0..n_nodes * ppn)
            .map(|_| RefCell::new(RegCache::new(reg_params.reg_cache_bytes)))
            .collect();
        Rc::new(ElanWorld {
            sim: sim.clone(),
            net,
            nodes,
            params: mpi_params,
            ppn,
            regcaches,
            reg_params,
            hw_barrier: RefCell::new(HwBarrierState::default()),
        })
    }

    pub fn n_ranks(&self) -> usize {
        self.net.n_ranks()
    }

    /// Run statistics: traffic volumes and NIC-visible events.
    /// Registration counters stay zero unless the
    /// explicit-registration ablation is enabled.
    pub fn stats(&self) -> crate::WorldStats {
        let (mut hits, mut misses, mut evictions) = (0, 0, 0);
        for rc in &self.regcaches {
            let c = rc.borrow();
            hits += c.hits;
            misses += c.misses;
            evictions += c.evictions;
        }
        crate::WorldStats {
            wire_bytes: self.net.fabric.total_link_bytes(),
            nic_messages: self.net.total_messages(),
            unexpected: self.net.total_unexpected(),
            reg_hits: hits,
            reg_misses: misses,
            reg_evictions: evictions,
        }
    }

    pub fn comm(self: &Rc<Self>, rank: usize) -> TportsComm {
        assert!(rank < self.n_ranks());
        TportsComm {
            w: self.clone(),
            rank,
        }
    }

    /// Spawn one task per rank running `f`. (Quadrics is
    /// connectionless — there is no per-peer setup to charge at init,
    /// §3.3.1.)
    pub fn spawn_ranks<F, Fut>(self: &Rc<Self>, name: &str, f: F)
    where
        F: Fn(TportsComm) -> Fut,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        for r in 0..self.n_ranks() {
            self.sim
                .spawn_fmt(format_args!("{name}[elan:{r}]"), f(self.comm(r)));
        }
    }
}

/// Rank-local communicator handle for the Elan world.
#[derive(Clone)]
pub struct TportsComm {
    w: Rc<ElanWorld>,
    rank: usize,
}

impl TportsComm {
    fn cpu(&self) -> usize {
        self.rank % self.w.ppn
    }
    fn node(&self) -> &Rc<Node> {
        self.w.net.node_of(self.rank)
    }
    pub fn world(&self) -> &Rc<ElanWorld> {
        &self.w
    }

    /// Ablation: explicit registration cost for one buffer, zero when
    /// the ablation is off (Elan's MMU makes registration implicit).
    fn ablated_reg_cost(&self, region: u64, bytes: u64) -> Dur {
        if !self.w.params.explicit_registration || bytes <= self.w.net.params.eager_threshold {
            return Dur::ZERO;
        }
        self.w.regcaches[self.rank]
            .borrow_mut()
            .register(&self.w.reg_params, region, bytes)
    }
}

/// Outstanding Tports operation.
pub enum TportsReq {
    Send(Flag),
    Recv(TportRecvHandle),
}

impl Communicator for TportsComm {
    type Req = TportsReq;

    fn rank(&self) -> usize {
        self.rank
    }
    fn size(&self) -> usize {
        self.w.n_ranks()
    }
    fn sim(&self) -> Sim {
        self.w.sim.clone()
    }

    async fn isend_full(
        &self,
        dst: usize,
        tag: i64,
        ctx: u32,
        data: Bytes,
        bytes: u64,
        region: u64, // unused unless the explicit-registration ablation is on
    ) -> TportsReq {
        let cost = self.w.net.params.pio_issue
            + self.w.params.shim_overhead
            + self.ablated_reg_cost(region, bytes);
        self.node().cpu_work(&self.w.sim, self.cpu(), cost).await;
        let hdr = TportHeader {
            src_rank: self.rank,
            dst_rank: dst,
            tag,
            ctx,
        };
        TportsReq::Send(self.w.net.tport_send(&self.w.sim, hdr, data, bytes))
    }

    async fn irecv_full(
        &self,
        src: Option<usize>,
        tag: Option<i64>,
        ctx: u32,
        _region: u64,
    ) -> TportsReq {
        let cost = self.w.net.params.post_recv + self.w.params.shim_overhead;
        self.node().cpu_work(&self.w.sim, self.cpu(), cost).await;
        let sel = TportSel {
            dst_rank: self.rank,
            src,
            tag,
            ctx,
        };
        TportsReq::Recv(self.w.net.tport_post_recv(&self.w.sim, sel))
    }

    async fn compute(&self, dur: Dur, mem_intensity: f64) {
        self.node()
            .compute(&self.w.sim, self.cpu(), dur, mem_intensity)
            .await;
    }

    async fn hw_barrier(&self) -> bool {
        let Some(latency) = self.w.net.params.hw_barrier else {
            return false;
        };
        // Arm the barrier network (one PIO), then wait for the global
        // pulse: released `latency` after the last rank arrives.
        self.node()
            .cpu_work(&self.w.sim, self.cpu(), self.w.net.params.pio_issue)
            .await;
        let flag = Flag::new();
        let release = {
            let mut st = self.w.hw_barrier.borrow_mut();
            st.arrived += 1;
            st.waiting.push(flag.clone());
            if st.arrived == self.w.n_ranks() {
                let waiters = std::mem::take(&mut st.waiting);
                st.arrived = 0;
                Some(waiters)
            } else {
                None
            }
        };
        if let Some(waiters) = release {
            self.w.sim.call_in(latency, move |_| {
                for w in waiters {
                    w.set();
                }
            });
        }
        flag.wait().await;
        true
    }

    async fn wait(&self, req: TportsReq) -> Option<RecvMsg> {
        match req {
            TportsReq::Send(flag) => {
                flag.wait().await;
                None
            }
            TportsReq::Recv(handle) => {
                handle.done.wait().await;
                let a = handle.take();
                Some(RecvMsg {
                    src: a.src_rank,
                    tag: a.tag,
                    bytes: a.bytes,
                    data: a.data,
                })
            }
        }
    }
}
