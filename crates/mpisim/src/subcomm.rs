//! Sub-communicators: MPI_Comm_split for the simulation.
//!
//! A [`SubComm`] wraps any [`Communicator`] with (a) a rank translation
//! table and (b) a distinct context id, so the generic collectives in
//! [`crate::collectives`] work unchanged on process subgroups — row
//! groups, column groups, per-node groups — with full isolation from
//! world traffic and from other groups (groups with different `color`
//! get different contexts).
//!
//! Split is purely local in the simulation (every rank can compute the
//! grouping deterministically), mirroring how MPI implementations of
//! the era computed communicator layouts from replicated metadata.

use std::rc::Rc;

use crate::{Bytes, Communicator, RecvMsg};

/// A communicator over a subgroup of another communicator's ranks.
#[derive(Clone)]
pub struct SubComm<C: Communicator> {
    parent: C,
    /// Subgroup members as parent ranks, in subgroup rank order.
    members: Rc<Vec<usize>>,
    /// My rank within the subgroup.
    my_rank: usize,
    /// Context id for this subgroup's traffic.
    ctx: u32,
}

/// Context ids for sub-communicators start here; `color` offsets them
/// so sibling groups never share a context.
const CTX_SPLIT_BASE: u32 = 1000;

impl<C: Communicator> SubComm<C> {
    /// MPI_Comm_split: every rank supplies the full color assignment
    /// (deterministically computable by all ranks — e.g. `rank /
    /// group_size`); ranks sharing a color form a subgroup ordered by
    /// parent rank. Returns `None` if this rank's color is `None`
    /// (MPI_UNDEFINED).
    pub fn split(parent: &C, color_of: impl Fn(usize) -> Option<u32>) -> Option<SubComm<C>> {
        let my_color = color_of(parent.rank())?;
        let members: Vec<usize> = (0..parent.size())
            .filter(|&r| color_of(r) == Some(my_color))
            .collect();
        let my_rank = members
            .iter()
            .position(|&r| r == parent.rank())
            .expect("own rank must be in own color group");
        Some(SubComm {
            parent: parent.clone(),
            members: Rc::new(members),
            my_rank,
            ctx: CTX_SPLIT_BASE + my_color,
        })
    }

    /// Parent rank of subgroup rank `r`.
    pub fn world_rank(&self, r: usize) -> usize {
        self.members[r]
    }

    pub fn parent(&self) -> &C {
        &self.parent
    }
}

impl<C: Communicator> Communicator for SubComm<C> {
    type Req = C::Req;

    fn rank(&self) -> usize {
        self.my_rank
    }
    fn size(&self) -> usize {
        self.members.len()
    }
    fn sim(&self) -> elanib_simcore::Sim {
        self.parent.sim()
    }

    async fn isend_full(
        &self,
        dst: usize,
        tag: i64,
        ctx: u32,
        data: Bytes,
        bytes: u64,
        region: u64,
    ) -> C::Req {
        // Fold the caller's ctx into ours so collectives-inside-
        // subgroups (which pass CTX_COLL) stay isolated per group.
        self.parent
            .isend_full(
                self.members[dst],
                tag,
                self.ctx.wrapping_mul(64).wrapping_add(ctx),
                data,
                bytes,
                region,
            )
            .await
    }

    async fn irecv_full(
        &self,
        src: Option<usize>,
        tag: Option<i64>,
        ctx: u32,
        region: u64,
    ) -> C::Req {
        self.parent
            .irecv_full(
                src.map(|s| self.members[s]),
                tag,
                self.ctx.wrapping_mul(64).wrapping_add(ctx),
                region,
            )
            .await
    }

    async fn wait(&self, req: C::Req) -> Option<RecvMsg> {
        let m = self.parent.wait(req).await;
        // Translate the source back into subgroup rank space.
        m.map(|mut msg| {
            if let Some(local) = self.members.iter().position(|&w| w == msg.src) {
                msg.src = local;
            }
            msg
        })
    }

    async fn compute(&self, dur: elanib_simcore::Dur, mem_intensity: f64) {
        self.parent.compute(dur, mem_intensity).await;
    }
}
