//! Network-generic job launcher: run the same rank program on either
//! network and get the final simulated time back.

use elanib_fabric::FaultStats;
use elanib_nic::{BackendKind, ElanParams, HcaParams, RoceMode, RoceParams};
use elanib_nodesim::NodeParams;
use elanib_simcore::{Dur, Sim, SimError, SimTime};

use crate::tports::{ElanWorld, TportsMpiParams};
use crate::verbs::{IbWorld, VerbsParams};
use crate::Communicator;

/// Which interconnect a job runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Network {
    InfiniBand,
    Elan4,
    /// EXTENSION: RoCEv2 over lossless-configured 10GbE, one variant
    /// per congestion-control mode. Same MVAPICH software stack as
    /// [`Network::InfiniBand`]; the fabric and the CC engine differ.
    RoceV2(RoceMode),
}

impl Network {
    pub fn label(self) -> &'static str {
        match self {
            Network::InfiniBand => "4X InfiniBand",
            Network::Elan4 => "Quadrics Elan-4",
            Network::RoceV2(RoceMode::Pfc) => "RoCEv2/pfc",
            Network::RoceV2(RoceMode::Dcqcn) => "RoCEv2/dcqcn",
            Network::RoceV2(RoceMode::Hybrid) => "RoCEv2/hybrid",
        }
    }

    /// The paper's two study networks — every committed exhibit
    /// iterates exactly these.
    pub const BOTH: [Network; 2] = [Network::InfiniBand, Network::Elan4];

    /// Every modelled interconnect, including the RoCEv2 extension
    /// modes (the CI backend matrix and the fuzzer draw from here).
    pub const ALL: [Network; 5] = [
        Network::InfiniBand,
        Network::Elan4,
        Network::RoceV2(RoceMode::Pfc),
        Network::RoceV2(RoceMode::Dcqcn),
        Network::RoceV2(RoceMode::Hybrid),
    ];

    /// The registry identity of this network (the `ELANIB_BACKEND`
    /// names).
    pub fn backend(self) -> BackendKind {
        match self {
            Network::InfiniBand => BackendKind::Hca,
            Network::Elan4 => BackendKind::Elan,
            Network::RoceV2(m) => BackendKind::Roce(m),
        }
    }

    fn from_backend(b: BackendKind) -> Network {
        match b {
            BackendKind::Hca => Network::InfiniBand,
            BackendKind::Elan => Network::Elan4,
            BackendKind::Roce(m) => Network::RoceV2(m),
        }
    }
}

impl std::fmt::Display for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A rank program that can run over any [`Communicator`]. Cloned once
/// per rank.
pub trait RankProgram: Clone + 'static {
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static;
}

/// Job description shared by every experiment in the reproduction.
#[derive(Clone, Copy, Debug)]
pub struct JobSpec {
    pub network: Network,
    pub nodes: usize,
    pub ppn: usize,
    pub seed: u64,
}

impl JobSpec {
    pub fn n_ranks(&self) -> usize {
        self.nodes * self.ppn
    }
}

/// Every tunable of both stacks in one bundle — the handle the
/// ablation studies turn.
#[derive(Clone, Debug, Default)]
pub struct NetConfig {
    pub node: NodeParams,
    pub hca: HcaParams,
    pub verbs: VerbsParams,
    pub elan: ElanParams,
    pub tports: TportsMpiParams,
    /// Deterministic fault-injection plan threaded down to the fabric.
    /// `None` falls back to the `ELANIB_FAULTS` environment plan (or
    /// no faults at all) — the hot path stays untouched either way.
    pub faults: Option<std::sync::Arc<elanib_fabric::FaultPlan>>,
    /// RoCEv2 congestion-control override. `None` (the default) means
    /// a [`Network::RoceV2`] job runs on [`RoceParams::for_mode`] of
    /// its mode; ignored entirely by the two paper networks.
    pub roce: Option<RoceParams>,
}

/// Run `program` on every rank of a fresh cluster; returns the final
/// simulated time (all ranks and all in-flight hardware activity
/// complete). Panics on deadlock — a deadlock in an experiment is a
/// bug, not a result.
pub fn run_job<P: RankProgram>(spec: JobSpec, program: P) -> SimTime {
    run_job_configured(spec, &NetConfig::default(), program)
}

/// `ELANIB_SIM_BUDGET_SECS`: in-kernel simulated-time watchdog for
/// [`run_job`]-family launches. A runaway simulation (livelock, a
/// fault plan that never lets a retransmit through) used to be killed
/// from outside by the script-level `ELANIB_REGEN_TIMEOUT`; the
/// in-kernel budget instead surfaces a typed
/// [`SimError::ScenarioTimeout`] with the flight-ring tail attached.
/// Default 10 000 simulated seconds — orders of magnitude past any
/// committed exhibit, so the fixed results never feel it; `0`/`off`
/// disables. The script watchdog stays as the outer backstop.
fn job_budget() -> Option<SimTime> {
    match std::env::var("ELANIB_SIM_BUDGET_SECS").as_deref() {
        Ok("0") | Ok("off") => None,
        Ok(v) => v
            .parse::<u64>()
            .ok()
            .map(|s| SimTime::ZERO + Dur::from_secs(s)),
        Err(_) => Some(SimTime::ZERO + Dur::from_secs(10_000)),
    }
}

/// [`run_job`] with explicit stack parameters (ablations, sweeps).
pub fn run_job_configured<P: RankProgram>(spec: JobSpec, cfg: &NetConfig, program: P) -> SimTime {
    match run_scenario(spec, cfg, job_budget(), program) {
        Ok(run) => run.end,
        Err(e @ SimError::Deadlock { .. }) => panic!("{} job deadlocked: {e}", spec.network),
        Err(e) => panic!("{} job failed: {e}", spec.network),
    }
}

/// One completed scenario run: the final clock plus every end-of-run
/// counter the fuzzer's cross-cutting invariants read.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// Final simulated time (all ranks and hardware activity done).
    pub end: SimTime,
    /// Whole-world traffic and software-event totals.
    pub stats: crate::WorldStats,
    /// Fault-injection and recovery totals from the fabric.
    pub faults: FaultStats,
    /// Per-link byte totals, in link order — the determinism invariant
    /// compares these byte-for-byte across serial/sharded and
    /// cold/warm-cache replays.
    pub link_bytes: Vec<u64>,
}

/// Programmatic scenario entry point for the property fuzzer:
/// identical cluster construction to [`run_job_configured`], but a
/// deadlock — or a blown simulated-time `budget` — comes back as a
/// typed `Err(SimError)` instead of a panic, so a fuzz batch can treat
/// failures as data, shrink them, and replay them.
pub fn run_scenario<P: RankProgram>(
    spec: JobSpec,
    cfg: &NetConfig,
    budget: Option<SimTime>,
    program: P,
) -> Result<ScenarioRun, SimError> {
    run_scenario_on(&Sim::new(spec.seed), spec, cfg, budget, program)
}

/// [`run_scenario`] on a caller-built kernel — the hook for harnesses
/// that pin a tracer or profiler regardless of environment
/// ([`Sim::with_tracer`] / [`Sim::with_profiler`]): the fuzzer's
/// observer-effect invariant re-runs a scenario with telemetry
/// attached and demands byte-identical metrics. The caller is
/// responsible for seeding `sim` with `spec.seed` if it wants the
/// plain [`run_scenario`] behavior.
/// `ELANIB_BACKEND`: force every scenario onto one backend by registry
/// name (`hca`/`ib`, `elan`, `roce`, `roce-pfc`, `roce-dcqcn`,
/// `roce-hybrid`) regardless of what the harness asked for. This is
/// the CI backend-matrix hook: the same exhibit binary re-runs under
/// each backend without recompilation. **Pair it with
/// `ELANIB_CACHE=off`** — the scenario cache keys on the *requested*
/// network, so cached entries written under an override would poison
/// later unoverridden runs.
fn backend_override(spec: JobSpec) -> JobSpec {
    apply_backend(spec, std::env::var("ELANIB_BACKEND").ok().as_deref())
}

fn apply_backend(spec: JobSpec, name: Option<&str>) -> JobSpec {
    match name {
        None => spec,
        Some(name) => match BackendKind::parse(name) {
            Some(b) => JobSpec {
                network: Network::from_backend(b),
                ..spec
            },
            None => panic!(
                "ELANIB_BACKEND={name:?} is not a backend; known: {}",
                BackendKind::ALL.map(|b| b.name()).join(", ")
            ),
        },
    }
}

pub fn run_scenario_on<P: RankProgram>(
    sim: &Sim,
    spec: JobSpec,
    cfg: &NetConfig,
    budget: Option<SimTime>,
    program: P,
) -> Result<ScenarioRun, SimError> {
    let spec = backend_override(spec);
    if let Some(tr) = sim.tracer() {
        tr.set_label(format!(
            "{} {}n x {}ppn",
            spec.network, spec.nodes, spec.ppn
        ));
    }
    let drive = |sim: &Sim| match budget {
        Some(b) => sim.run_until_budget(b),
        None => sim.run(),
    };
    match spec.network {
        Network::InfiniBand | Network::RoceV2(_) => {
            let w = match spec.network {
                Network::RoceV2(mode) => {
                    let rp = cfg.roce.unwrap_or_else(|| RoceParams::for_mode(mode));
                    IbWorld::with_config_roce(sim, spec.nodes, spec.ppn, cfg, rp)
                }
                _ => IbWorld::with_config(sim, spec.nodes, spec.ppn, cfg),
            };
            w.spawn_ranks("job", move |c| program.clone().run(c));
            let end = drive(sim)?;
            if let Some(tr) = sim.tracer() {
                record_world_metrics(tr, &w.stats());
                w.net.fabric.record_metrics(tr);
            }
            Ok(ScenarioRun {
                end,
                stats: w.stats(),
                faults: w.net.fabric.fault_stats(),
                link_bytes: w.net.fabric.per_link_bytes(),
            })
        }
        Network::Elan4 => {
            let w = ElanWorld::with_config(sim, spec.nodes, spec.ppn, cfg);
            w.spawn_ranks("job", move |c| program.clone().run(c));
            let end = drive(sim)?;
            if let Some(tr) = sim.tracer() {
                record_world_metrics(tr, &w.stats());
                w.net.fabric.record_metrics(tr);
            }
            Ok(ScenarioRun {
                end,
                stats: w.stats(),
                faults: w.net.fabric.fault_stats(),
                link_bytes: w.net.fabric.per_link_bytes(),
            })
        }
    }
}

/// Fold end-of-run [`crate::WorldStats`] into the metrics registry.
/// Live per-event counters cover the software path; these cover
/// whole-world hardware totals that are cheapest to read once at the
/// end (fabric byte counts, NIC work-request totals, regcache state).
fn record_world_metrics(tr: &elanib_simcore::trace::Tracer, st: &crate::WorldStats) {
    tr.add("world.wire_bytes", st.wire_bytes);
    tr.add("world.nic_messages", st.nic_messages);
    tr.add("world.unexpected", st.unexpected);
    tr.add("world.reg_hits", st.reg_hits);
    tr.add("world.reg_misses", st.reg_misses);
    tr.add("world.reg_evictions", st.reg_evictions);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allreduce, Op};
    use std::cell::Cell;
    use std::rc::Rc;

    #[derive(Clone)]
    struct SumProgram {
        out: Rc<Cell<f64>>,
    }

    impl RankProgram for SumProgram {
        #[allow(clippy::manual_async_fn)]
        fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
            async move {
                let v = allreduce(&c, Op::Sum, &[1.0]).await;
                if c.rank() == 0 {
                    self.out.set(v[0]);
                }
            }
        }
    }

    #[test]
    fn run_scenario_returns_counters_on_success() {
        for net in Network::BOTH {
            let out = Rc::new(Cell::new(0.0));
            let run = run_scenario(
                JobSpec {
                    network: net,
                    nodes: 4,
                    ppn: 1,
                    seed: 2,
                },
                &NetConfig::default(),
                Some(SimTime::ZERO + Dur::from_secs(1)),
                SumProgram { out: out.clone() },
            )
            .expect("scenario completes well under budget");
            assert_eq!(out.get(), 4.0);
            assert!(run.end > SimTime::ZERO);
            assert!(run.stats.wire_bytes > 0, "allreduce moved bytes");
            assert_eq!(run.faults, FaultStats::default(), "no plan, no faults");
            assert_eq!(
                run.link_bytes.iter().sum::<u64>(),
                run.stats.wire_bytes,
                "per-link bytes account for the wire total"
            );
        }
    }

    #[test]
    fn run_scenario_reports_blown_budget_as_typed_error() {
        let out = Rc::new(Cell::new(0.0));
        let err = run_scenario(
            JobSpec {
                network: Network::InfiniBand,
                nodes: 4,
                ppn: 1,
                seed: 2,
            },
            &NetConfig::default(),
            // One picosecond of simulated time: nothing real finishes.
            Some(SimTime::ZERO + Dur::from_ps(1)),
            SumProgram { out },
        )
        .expect_err("budget must blow");
        assert!(
            matches!(err, SimError::ScenarioTimeout { .. }),
            "expected timeout, got {err:?}"
        );
    }

    #[test]
    fn run_job_on_every_roce_mode() {
        for mode in RoceMode::ALL {
            let out = Rc::new(Cell::new(0.0));
            let t = run_job(
                JobSpec {
                    network: Network::RoceV2(mode),
                    nodes: 4,
                    ppn: 2,
                    seed: 1,
                },
                SumProgram { out: out.clone() },
            );
            assert_eq!(out.get(), 8.0, "{mode} allreduce result");
            assert!(t > SimTime::ZERO);
        }
    }

    #[test]
    fn backend_override_maps_registry_names_onto_networks() {
        let spec = JobSpec {
            network: Network::InfiniBand,
            nodes: 2,
            ppn: 1,
            seed: 0,
        };
        assert_eq!(apply_backend(spec, None).network, Network::InfiniBand);
        assert_eq!(apply_backend(spec, Some("elan")).network, Network::Elan4);
        assert_eq!(
            apply_backend(spec, Some("roce-pfc")).network,
            Network::RoceV2(RoceMode::Pfc)
        );
        // Round trip: every modelled network survives its own name.
        for net in Network::ALL {
            assert_eq!(apply_backend(spec, Some(net.backend().name())).network, net);
        }
    }

    #[test]
    fn run_job_on_both_networks() {
        for net in Network::BOTH {
            let out = Rc::new(Cell::new(0.0));
            let t = run_job(
                JobSpec {
                    network: net,
                    nodes: 4,
                    ppn: 2,
                    seed: 1,
                },
                SumProgram { out: out.clone() },
            );
            assert_eq!(out.get(), 8.0);
            assert!(t > SimTime::ZERO);
        }
    }
}
