//! Network-generic job launcher: run the same rank program on either
//! network and get the final simulated time back.

use elanib_nic::{ElanParams, HcaParams};
use elanib_nodesim::NodeParams;
use elanib_simcore::{Sim, SimTime};

use crate::tports::{ElanWorld, TportsMpiParams};
use crate::verbs::{IbWorld, VerbsParams};
use crate::Communicator;

/// Which interconnect a job runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Network {
    InfiniBand,
    Elan4,
}

impl Network {
    pub fn label(self) -> &'static str {
        match self {
            Network::InfiniBand => "4X InfiniBand",
            Network::Elan4 => "Quadrics Elan-4",
        }
    }

    pub const BOTH: [Network; 2] = [Network::InfiniBand, Network::Elan4];
}

impl std::fmt::Display for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A rank program that can run over any [`Communicator`]. Cloned once
/// per rank.
pub trait RankProgram: Clone + 'static {
    fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static;
}

/// Job description shared by every experiment in the reproduction.
#[derive(Clone, Copy, Debug)]
pub struct JobSpec {
    pub network: Network,
    pub nodes: usize,
    pub ppn: usize,
    pub seed: u64,
}

impl JobSpec {
    pub fn n_ranks(&self) -> usize {
        self.nodes * self.ppn
    }
}

/// Every tunable of both stacks in one bundle — the handle the
/// ablation studies turn.
#[derive(Clone, Debug, Default)]
pub struct NetConfig {
    pub node: NodeParams,
    pub hca: HcaParams,
    pub verbs: VerbsParams,
    pub elan: ElanParams,
    pub tports: TportsMpiParams,
    /// Deterministic fault-injection plan threaded down to the fabric.
    /// `None` falls back to the `ELANIB_FAULTS` environment plan (or
    /// no faults at all) — the hot path stays untouched either way.
    pub faults: Option<std::sync::Arc<elanib_fabric::FaultPlan>>,
}

/// Run `program` on every rank of a fresh cluster; returns the final
/// simulated time (all ranks and all in-flight hardware activity
/// complete). Panics on deadlock — a deadlock in an experiment is a
/// bug, not a result.
pub fn run_job<P: RankProgram>(spec: JobSpec, program: P) -> SimTime {
    run_job_configured(spec, &NetConfig::default(), program)
}

/// [`run_job`] with explicit stack parameters (ablations, sweeps).
pub fn run_job_configured<P: RankProgram>(spec: JobSpec, cfg: &NetConfig, program: P) -> SimTime {
    let sim = Sim::new(spec.seed);
    if let Some(tr) = sim.tracer() {
        tr.set_label(format!(
            "{} {}n x {}ppn",
            spec.network, spec.nodes, spec.ppn
        ));
    }
    match spec.network {
        Network::InfiniBand => {
            let w = IbWorld::with_config(&sim, spec.nodes, spec.ppn, cfg);
            w.spawn_ranks("job", move |c| program.clone().run(c));
            let t = sim
                .run()
                .unwrap_or_else(|e| panic!("{} job deadlocked: {e}", spec.network));
            if let Some(tr) = sim.tracer() {
                record_world_metrics(tr, &w.stats());
                w.net.fabric.record_metrics(tr);
            }
            t
        }
        Network::Elan4 => {
            let w = ElanWorld::with_config(&sim, spec.nodes, spec.ppn, cfg);
            w.spawn_ranks("job", move |c| program.clone().run(c));
            let t = sim
                .run()
                .unwrap_or_else(|e| panic!("{} job deadlocked: {e}", spec.network));
            if let Some(tr) = sim.tracer() {
                record_world_metrics(tr, &w.stats());
                w.net.fabric.record_metrics(tr);
            }
            t
        }
    }
}

/// Fold end-of-run [`crate::WorldStats`] into the metrics registry.
/// Live per-event counters cover the software path; these cover
/// whole-world hardware totals that are cheapest to read once at the
/// end (fabric byte counts, NIC work-request totals, regcache state).
fn record_world_metrics(tr: &elanib_simcore::trace::Tracer, st: &crate::WorldStats) {
    tr.add("world.wire_bytes", st.wire_bytes);
    tr.add("world.nic_messages", st.nic_messages);
    tr.add("world.unexpected", st.unexpected);
    tr.add("world.reg_hits", st.reg_hits);
    tr.add("world.reg_misses", st.reg_misses);
    tr.add("world.reg_evictions", st.reg_evictions);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allreduce, Op};
    use std::cell::Cell;
    use std::rc::Rc;

    #[derive(Clone)]
    struct SumProgram {
        out: Rc<Cell<f64>>,
    }

    impl RankProgram for SumProgram {
        #[allow(clippy::manual_async_fn)]
        fn run<C: Communicator>(self, c: C) -> impl std::future::Future<Output = ()> + 'static {
            async move {
                let v = allreduce(&c, Op::Sum, &[1.0]).await;
                if c.rank() == 0 {
                    self.out.set(v[0]);
                }
            }
        }
    }

    #[test]
    fn run_job_on_both_networks() {
        for net in Network::BOTH {
            let out = Rc::new(Cell::new(0.0));
            let t = run_job(
                JobSpec {
                    network: net,
                    nodes: 4,
                    ppn: 2,
                    seed: 1,
                },
                SumProgram { out: out.clone() },
            );
            assert_eq!(out.get(), 8.0);
            assert!(t > SimTime::ZERO);
        }
    }
}
