//! # elanib — umbrella crate
//!
//! Re-exports the whole reproduction of *"A Comparison of 4X InfiniBand
//! and Quadrics Elan-4 Technologies"* (CLUSTER 2004) under one name.
//! See the individual crates for detail:
//!
//! * [`simcore`] — deterministic async discrete-event kernel
//! * [`fabric`] — links, switches, topologies, routing
//! * [`nodesim`] — dual-Xeon / PCI-X compute-node model
//! * [`nic`] — InfiniBand HCA (verbs) and Elan-4 (Tports) models
//! * [`mpi`] — MPI layer with the MVAPICH-style and Quadrics-style transports
//! * [`microbench`] — ping-pong, streaming, b_eff
//! * [`apps`] — LAMMPS proxy, Sweep3D, NAS CG
//! * [`cost`] — list-price cost model (Tables 2–3, Figures 7–8)
//! * [`core`] — the comparison framework: cluster builder, studies, metrics

pub use elanib_apps as apps;
pub use elanib_core as core;
pub use elanib_cost as cost;
pub use elanib_fabric as fabric;
pub use elanib_microbench as microbench;
pub use elanib_mpi as mpi;
pub use elanib_nic as nic;
pub use elanib_nodesim as nodesim;
pub use elanib_simcore as simcore;
