#!/usr/bin/env bash
# Regenerate every exhibit of the paper and verify the CSVs are
# byte-identical to the committed ones in results/ — the tier-2
# determinism check. Any drift (a kernel change that reorders events, a
# model change, a formatting change) fails loudly with a diff.
#
# Usage:
#   scripts/regen_all.sh              # regenerate + diff against results/
#   scripts/regen_all.sh --smoke      # fast subset (CI smoke check)
#   ELANIB_SWEEP_THREADS=1 scripts/regen_all.sh   # serial reference mode
#
# Environment:
#   ELANIB_SWEEP_THREADS  sweep-engine pool width (default: all cores;
#                         results are identical at any setting)
#   ELANIB_BENCH_JSON     optional JSON-lines file for sweep + regen
#                         perf records (see EXPERIMENTS.md)
#   ELANIB_CACHE_DIR      persistent point-cache directory: a warm rerun
#                         skips already-simulated sweep points entirely;
#                         the CSV diff must still pass warm or cold
#   ELANIB_CACHE=off      disable the point cache (memo tier included)
#   ELANIB_TRACE / ELANIB_METRICS  also emit Chrome traces / metrics
#                         summaries per exhibit (see EXPERIMENTS.md);
#                         the CSV diff must still pass with these set
#   ELANIB_REGEN_TIMEOUT  per-exhibit watchdog in seconds (default 300):
#                         an exhibit that livelocks — e.g. a fault plan
#                         that deadlocks a simulated rank — is killed
#                         and reported instead of hanging the run
set -euo pipefail
cd "$(dirname "$0")/.."

BINS="table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 tables ablations faults roce"
SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
    # Smoke mode: the cheap cost-model exhibits plus one full MD study
    # (fig2) — enough to catch kernel-ordering or formatting drift in
    # seconds; only the CSVs these bins produce are diffed.
    SMOKE=1
    BINS="table1 fig2 fig7 fig8 tables"
fi

cargo build --release --workspace --quiet

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# Each exhibit binary reports one "[regen <exhibit>: …]" stderr line per
# emitted table — wall time plus point-cache hit rate — on top of the
# shell-level per-binary wall time printed here.
total_start=$(date +%s%N)
for b in $BINS; do
    echo "== regenerating $b =="
    t0=$(date +%s%N)
    rc=0
    ELANIB_RESULTS_DIR="$out" timeout "${ELANIB_REGEN_TIMEOUT:-300}" \
        "./target/release/$b" > "$out/$b.txt" || rc=$?
    if [ "$rc" -eq 124 ]; then
        echo "TIMEOUT: $b exceeded ${ELANIB_REGEN_TIMEOUT:-300}s (livelocked sim?)" >&2
        exit 124
    elif [ "$rc" -ne 0 ]; then
        echo "FAIL: $b exited with status $rc" >&2
        exit "$rc"
    fi
    t1=$(date +%s%N)
    echo "== $b done in $(( (t1 - t0) / 1000000 )) ms =="
done
total_end=$(date +%s%N)
echo "== all exhibits regenerated in $(( (total_end - total_start) / 1000000 )) ms =="

status=0
n_cmp=0
for committed in results/*.csv; do
    name="$(basename "$committed")"
    if [ ! -f "$out/$name" ]; then
        if [ "$SMOKE" -eq 1 ]; then
            continue # not produced by the smoke subset
        fi
        echo "MISSING: $name was not regenerated" >&2
        status=1
        continue
    fi
    n_cmp=$((n_cmp + 1))
    if ! cmp -s "$committed" "$out/$name"; then
        echo "DRIFT: $name differs from committed results/" >&2
        diff -u "$committed" "$out/$name" | head -20 >&2 || true
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "OK: all $n_cmp exhibit CSVs byte-identical to committed results/"
    if [ "$SMOKE" -eq 0 ]; then
        # A clean full regen is the only legitimate producer of the
        # results manifest; scripts/ci.sh verifies it so stale or
        # hand-edited CSVs fail fast without rerunning any simulation.
        (cd results && LC_ALL=C sha256sum -- *.csv > MANIFEST.sha256)
        echo "results/MANIFEST.sha256 refreshed ($(wc -l < results/MANIFEST.sha256) CSVs)"
        # Bound the append-only BENCH history: keep the last N records
        # per (kind,label) key plus every best-on-record entry the
        # regression gates compare against (see elanib-report --rotate).
        rotate_args=()
        for f in BENCH_regen.json BENCH_sweep.json; do
            [ -s "$f" ] && rotate_args+=(--bench "$f")
        done
        if [ "${#rotate_args[@]}" -gt 0 ] && [ -x target/release/elanib-report ]; then
            ./target/release/elanib-report --rotate "${ELANIB_BENCH_KEEP:-8}" "${rotate_args[@]}"
        fi
    fi
else
    echo "FAIL: exhibit CSVs drifted (see above)" >&2
fi
exit "$status"
