#!/usr/bin/env bash
# Local CI gate: everything a change must pass before it lands.
#
#   1. release build of the whole workspace
#   2. full test suite
#   3. clippy with warnings promoted to errors (the tree is kept
#      warning-free; don't let it regress)
#   4. exhibit-determinism smoke check (regen_all.sh --smoke diffs the
#      fast exhibit subset against the committed results/)
#   5. point-cache consistency smoke: regenerate one simulation-backed
#      exhibit twice against a scratch ELANIB_CACHE_DIR and assert the
#      second (warm) run is answered by the cache and produces a
#      byte-identical CSV
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace --quiet

echo "== cargo test =="
cargo test -q

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== determinism smoke check =="
scripts/regen_all.sh --smoke

echo "== point-cache consistency smoke =="
cache_tmp="$(mktemp -d)"
trap 'rm -rf "$cache_tmp"' EXIT
mkdir -p "$cache_tmp/cold" "$cache_tmp/warm"
ELANIB_RESULTS_DIR="$cache_tmp/cold" ELANIB_CACHE_DIR="$cache_tmp/cache" \
    ./target/release/fig2 > /dev/null 2> "$cache_tmp/cold.log"
ELANIB_RESULTS_DIR="$cache_tmp/warm" ELANIB_CACHE_DIR="$cache_tmp/cache" \
    ./target/release/fig2 > /dev/null 2> "$cache_tmp/warm.log"
grep -q "cache 0 hits" "$cache_tmp/cold.log" \
    || { echo "FAIL: cold run unexpectedly hit the cache" >&2; cat "$cache_tmp/cold.log" >&2; exit 1; }
grep -q "100% hit rate" "$cache_tmp/warm.log" \
    || { echo "FAIL: warm run did not hit the cache" >&2; cat "$cache_tmp/warm.log" >&2; exit 1; }
cmp "$cache_tmp/cold/fig2_ljs.csv" "$cache_tmp/warm/fig2_ljs.csv" \
    || { echo "FAIL: warm-cache fig2 CSV differs from cold" >&2; exit 1; }
cmp "$cache_tmp/cold/fig2_ljs.csv" results/fig2_ljs.csv \
    || { echo "FAIL: cached fig2 CSV differs from committed results/" >&2; exit 1; }
echo "cache smoke OK: warm run fully cache-answered, CSVs byte-identical"

echo "CI OK"
