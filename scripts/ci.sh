#!/usr/bin/env bash
# Staged local CI gate: everything a change must pass before it lands.
#
# Stages, in order:
#
#    1. build        release build of the whole workspace
#    2. test         full test suite
#    3. fmt          cargo fmt --check (the tree is kept format-clean)
#    4. clippy       warnings promoted to errors
#    5. manifest     results/MANIFEST.sha256 must match the committed
#                    CSVs exactly (stale or hand-edited exhibits fail
#                    fast, before any simulation runs)
#    6. regen        exhibit-determinism smoke (regen_all.sh --smoke),
#                    with BENCH records captured for stage 8's gate
#    7. cache        point-cache consistency smoke (cold vs warm fig2)
#    8. par-des      sharded-regeneration determinism smoke: fig2 under
#                    ELANIB_DES_SHARDS=2 (cache off, so the run is
#                    live) must reproduce the committed CSV byte for
#                    byte
#    9. backend-matrix
#                    N-way NIC-backend gate: the fig2 smoke exhibit
#                    reruns under every registered backend via
#                    ELANIB_BACKEND (hca, elan, roce-pfc, roce-dcqcn,
#                    roce-hybrid; cache off so every run is live). The
#                    two refactored paper backends must reproduce their
#                    committed fig2 columns byte for byte even when
#                    routed through the override machinery; the three
#                    RoCE modes must complete cleanly. Per-backend wall
#                    times land in ci_summary.json
#   10. conformance  paper-shape validation: expectations/*.toml vs the
#                    committed results/, exhibit coverage, and the
#                    BENCH wall-time + events/s regression gates
#                    (warn-only; run the binary with --strict to make
#                    them fail)
#   11. report       perf dashboard: elanib-report merges the committed
#                    BENCH history, this run's records (including the
#                    kernel-profiler output stage 6 collects under
#                    ELANIB_PROFILE=1) and the conformance verdict into
#                    perf_report.md / perf_report.json; the
#                    per-event-type cost gate is warn-only, like the
#                    bench gate
#   12. perf-gate    FAILING events/s regression gate: the quick kernel
#                    micro-bench (kernelbench) records its scenarios,
#                    then conformance --eps-gate 2 fails the run if any
#                    sweep record above the 50k-event noise floor is
#                    more than 2x below the best on record
#   13. faults       fault-matrix smoke (loss + outage plans terminate)
#   14. zero-fault   a rate-zero fault plan regenerates every CSV
#                    byte-identically (full regen_all.sh)
#   15. fuzz         time-boxed property fuzz: seeded random scenarios
#                    through both stacks with every cross-cutting
#                    invariant checked (elanib-fuzz); a violation
#                    fails the stage and prints the shrunk repro path
#
# Every exhibit invocation runs under the ELANIB_REGEN_TIMEOUT watchdog
# (default 300 s) so a livelocked simulation fails CI instead of
# wedging it.
#
# Usage:
#   scripts/ci.sh                 # all stages
#   scripts/ci.sh --quick         # build + test + clippy only
#   scripts/ci.sh --stage <name>  # one stage (assumes a prior build)
#   scripts/ci.sh --list          # print stage names and exit
#
# Each run prints a per-stage wall-time summary table and writes it as
# ci_summary.json (machine-readable, gitignored) in the repo root.
set -uo pipefail
cd "$(dirname "$0")/.."

STAGES="build test fmt clippy manifest regen cache par-des backend-matrix conformance report perf-gate faults zero-fault fuzz"
QUICK_STAGES="build test clippy"

MODE="full"
ONLY_STAGE=""
case "${1:-}" in
    "") ;;
    --quick) MODE="quick" ;;
    --stage)
        ONLY_STAGE="${2:-}"
        if [ -z "$ONLY_STAGE" ]; then
            echo "usage: scripts/ci.sh --stage <name>  (one of: $STAGES)" >&2
            exit 2
        fi
        case " $STAGES " in
            *" $ONLY_STAGE "*) ;;
            *)
                echo "unknown stage '$ONLY_STAGE' (one of: $STAGES)" >&2
                exit 2
                ;;
        esac
        MODE="stage:$ONLY_STAGE"
        ;;
    --list)
        for s in $STAGES; do echo "$s"; done
        exit 0
        ;;
    *)
        echo "usage: scripts/ci.sh [--quick | --stage <name> | --list]" >&2
        exit 2
        ;;
esac

wd="${ELANIB_REGEN_TIMEOUT:-300}"
# Stamp schema-3 BENCH/profile records with the revision they were
# measured at ("" when git is unavailable). Exported so the rebuilds
# inside regen_all.sh inherit it too instead of silently un-stamping.
export ELANIB_GIT_REV="${ELANIB_GIT_REV:-$(git rev-parse --short HEAD 2>/dev/null || true)}"
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
BENCH_CURRENT="$scratch/bench_current.json"

# ---------------------------------------------------------------- stages

stage_build() {
    cargo build --release --workspace --quiet
}

stage_test() {
    cargo test -q
}

stage_fmt() {
    cargo fmt --check \
        || { echo "FAIL: formatting drift — run 'cargo fmt' and recommit" >&2; return 1; }
}

stage_clippy() {
    cargo clippy --workspace --all-targets --quiet -- -D warnings
}

stage_manifest() {
    # The manifest is regenerated by a successful full regen_all.sh
    # run; CI only ever verifies it. A mismatch means a results CSV
    # was hand-edited, or a change regenerated exhibits without
    # rerunning scripts/regen_all.sh.
    if [ ! -f results/MANIFEST.sha256 ]; then
        echo "FAIL: results/MANIFEST.sha256 missing — run scripts/regen_all.sh to create it" >&2
        return 1
    fi
    (cd results && LC_ALL=C sha256sum --check --quiet MANIFEST.sha256) || {
        echo "FAIL: results/ checksum mismatch — a committed CSV is stale or was hand-edited." >&2
        echo "      Regenerate legitimately with scripts/regen_all.sh (which refreshes the manifest)." >&2
        return 1
    }
    local f name
    for f in results/*.csv; do
        name="$(basename "$f")"
        grep -q "  $name\$" results/MANIFEST.sha256 || {
            echo "FAIL: $f is not listed in results/MANIFEST.sha256 —" >&2
            echo "      new exhibits must go through scripts/regen_all.sh so the manifest covers them." >&2
            return 1
        }
    done
}

stage_regen() {
    # Capture per-exhibit BENCH records for the conformance stage's
    # wall-time regression gate. ELANIB_PROFILE=1 additionally collects
    # kernel-profiler records for the report stage — profiling is
    # distortion-free, so the byte-identity checks still hold (the
    # profile_determinism test is the proof).
    ELANIB_BENCH_JSON="$BENCH_CURRENT" ELANIB_PROFILE=1 scripts/regen_all.sh --smoke
}

stage_cache() {
    mkdir -p "$scratch/cold" "$scratch/warm"
    ELANIB_RESULTS_DIR="$scratch/cold" ELANIB_CACHE_DIR="$scratch/cache" \
        timeout "$wd" ./target/release/fig2 > /dev/null 2> "$scratch/cold.log"
    ELANIB_RESULTS_DIR="$scratch/warm" ELANIB_CACHE_DIR="$scratch/cache" \
        timeout "$wd" ./target/release/fig2 > /dev/null 2> "$scratch/warm.log"
    grep -q "cache 0 hits" "$scratch/cold.log" \
        || { echo "FAIL: cold run unexpectedly hit the cache" >&2; cat "$scratch/cold.log" >&2; return 1; }
    grep -q "100% hit rate" "$scratch/warm.log" \
        || { echo "FAIL: warm run did not hit the cache" >&2; cat "$scratch/warm.log" >&2; return 1; }
    cmp "$scratch/cold/fig2_ljs.csv" "$scratch/warm/fig2_ljs.csv" \
        || { echo "FAIL: warm-cache fig2 CSV differs from cold" >&2; return 1; }
    cmp "$scratch/cold/fig2_ljs.csv" results/fig2_ljs.csv \
        || { echo "FAIL: cached fig2 CSV differs from committed results/" >&2; return 1; }
    echo "cache smoke OK: warm run fully cache-answered, CSVs byte-identical"
}

stage_par-des() {
    # Sharded regeneration must be observationally invisible: the same
    # exhibit regenerated with static shard placement (cache off, so
    # the pass is a live simulation rather than a replay) has to match
    # the committed CSV byte for byte.
    mkdir -p "$scratch/pardes"
    ELANIB_RESULTS_DIR="$scratch/pardes" ELANIB_DES_SHARDS=2 ELANIB_CACHE=off \
        timeout "$wd" ./target/release/fig2 > /dev/null 2> "$scratch/pardes.log" \
        || { echo "FAIL: fig2 under ELANIB_DES_SHARDS=2 (status $?)" >&2
             cat "$scratch/pardes.log" >&2; return 1; }
    cmp "$scratch/pardes/fig2_ljs.csv" results/fig2_ljs.csv \
        || { echo "FAIL: 2-shard fig2 CSV differs from committed results/" >&2; return 1; }
    echo "par-des smoke OK: 2-shard fig2 regeneration byte-identical to committed CSV"
}

stage_backend-matrix() {
    # One fig2 smoke run per registered NIC backend, forced through the
    # ELANIB_BACKEND override (always paired with ELANIB_CACHE=off: an
    # overridden run must never populate or read the point cache, whose
    # keys name the *requested* network). fig2's CSV carries IB columns
    # (2,3,6,7) and Elan columns (4,5,8,9); forcing hca must reproduce
    # the committed IB columns byte for byte, forcing elan the Elan
    # columns — the proof that the NicBackend refactor plus override
    # plumbing is observationally invisible for the paper backends. The
    # RoCE modes have no committed fig2 numbers; completing cleanly is
    # their gate (their quantitative claims live in expectations/
    # roce.toml).
    local b rc t0 t1
    BM_NAMES=()
    BM_WALLS=()
    for b in hca elan roce-pfc roce-dcqcn roce-hybrid; do
        mkdir -p "$scratch/bm-$b"
        t0=$(date +%s%N)
        rc=0
        ELANIB_RESULTS_DIR="$scratch/bm-$b" ELANIB_BACKEND="$b" ELANIB_CACHE=off \
            timeout "$wd" ./target/release/fig2 > /dev/null 2> "$scratch/bm-$b.log" || rc=$?
        t1=$(date +%s%N)
        if [ "$rc" -ne 0 ]; then
            echo "FAIL: fig2 under ELANIB_BACKEND=$b (status $rc)" >&2
            cat "$scratch/bm-$b.log" >&2
            return 1
        fi
        [ -s "$scratch/bm-$b/fig2_ljs.csv" ] \
            || { echo "FAIL: ELANIB_BACKEND=$b produced no fig2 CSV" >&2; return 1; }
        BM_NAMES+=("$b")
        BM_WALLS+=($(( (t1 - t0) / 1000000 )))
        echo "backend $b: fig2 smoke ok in $(( (t1 - t0) / 1000000 )) ms"
    done
    cut -d, -f1,2,3,6,7 results/fig2_ljs.csv > "$scratch/bm-ib-committed.csv"
    cut -d, -f1,2,3,6,7 "$scratch/bm-hca/fig2_ljs.csv" > "$scratch/bm-ib-forced.csv"
    cmp "$scratch/bm-ib-committed.csv" "$scratch/bm-ib-forced.csv" \
        || { echo "FAIL: ELANIB_BACKEND=hca drifted the IB columns of fig2" >&2
             diff -u "$scratch/bm-ib-committed.csv" "$scratch/bm-ib-forced.csv" | head -10 >&2
             return 1; }
    cut -d, -f1,4,5,8,9 results/fig2_ljs.csv > "$scratch/bm-elan-committed.csv"
    cut -d, -f1,4,5,8,9 "$scratch/bm-elan/fig2_ljs.csv" > "$scratch/bm-elan-forced.csv"
    cmp "$scratch/bm-elan-committed.csv" "$scratch/bm-elan-forced.csv" \
        || { echo "FAIL: ELANIB_BACKEND=elan drifted the Elan columns of fig2" >&2
             diff -u "$scratch/bm-elan-committed.csv" "$scratch/bm-elan-forced.csv" | head -10 >&2
             return 1; }
    echo "backend-matrix OK: 5 backends smoke-clean, hca/elan columns byte-identical"
}

stage_conformance() {
    # Paper-shape validation. The BENCH gate is warn-only here (add
    # --strict to promote regressions to failures); it only engages
    # when the regen stage ran in this invocation and left records.
    local bench_args=()
    if [ -s "$BENCH_CURRENT" ]; then
        bench_args=(--bench-current "$BENCH_CURRENT")
    fi
    timeout "$wd" ./target/release/conformance --json ci_conformance.json "${bench_args[@]}"
}

stage_report() {
    # Perf dashboard. Committed history first, this run's records last
    # — elanib-report treats the last record per label as "latest", so
    # the trend tables compare today against the best on record. The
    # per-event-type cost gate warns (never fails) here; run the binary
    # with --strict to promote regressions.
    local bench_args=()
    local f
    for f in BENCH_regen.json BENCH_sweep.json; do
        [ -s "$f" ] && bench_args+=(--bench "$f")
    done
    [ -s "$BENCH_CURRENT" ] && bench_args+=(--bench "$BENCH_CURRENT")
    timeout "$wd" ./target/release/elanib-report "${bench_args[@]}" \
        --conformance ci_conformance.json \
        --out-md perf_report.md --out-json perf_report.json
}

stage_perf-gate() {
    # FAILING events/s regression gate (the wall-time + cost gates stay
    # warn-only). The quick kernel micro-bench runs first, recording
    # kernel_{timers,calls,pingpong,model} sweep records next to the
    # regen stage's exhibit records; then conformance judges every
    # sweep record in this run's file against the best on record in the
    # committed BENCH history at a generous 2x, over a 50k-event noise
    # floor. A dispatch-path regression that halves kernel throughput
    # fails CI here even if every CSV is still byte-identical.
    ELANIB_BENCH_JSON="$BENCH_CURRENT" timeout "$wd" ./target/release/kernelbench \
        || { echo "FAIL: kernelbench exited non-zero ($?)" >&2; return 1; }
    if [ ! -s "$BENCH_CURRENT" ]; then
        echo "FAIL: no bench records collected (did the regen stage run?)" >&2
        return 1
    fi
    timeout "$wd" ./target/release/conformance --quiet --json ci_perf_gate.json \
        --bench-current "$BENCH_CURRENT" --eps-gate 2
}

stage_faults() {
    # The recovery machinery (IB retransmit/backoff, Elan link retry
    # and reroute) must terminate under representative plans. Exit
    # status is the assertion; the CSVs legitimately differ here.
    mkdir -p "$scratch/loss" "$scratch/outage"
    ELANIB_RESULTS_DIR="$scratch/loss" ELANIB_FAULTS="loss=1e-4,seed=13" \
        timeout "$wd" ./target/release/fig2 > /dev/null \
        || { echo "FAIL: fig2 under a low-rate loss plan (status $?)" >&2; return 1; }
    ELANIB_RESULTS_DIR="$scratch/outage" ELANIB_FAULTS="outage=link0@200us+2ms,seed=13" \
        timeout "$wd" ./target/release/fig2 > /dev/null \
        || { echo "FAIL: fig2 under a link-outage plan (status $?)" >&2; return 1; }
    echo "fault-matrix smoke OK: loss and outage plans both completed"
}

stage_zero-fault() {
    # A rate-zero plan must be indistinguishable from no plan at all:
    # every exhibit CSV byte-identical to the committed results/.
    ELANIB_FAULTS="loss=0,seed=1" scripts/regen_all.sh
}

stage_fuzz() {
    # Property fuzz over seeded random scenarios: both stacks, every
    # cross-cutting invariant (byte conservation, no-deadlock budget,
    # determinism/observer-effect replays, cache and sharded-engine
    # agreement, monotone degradation, paper ordering). Fixed base
    # seed keeps the stage reproducible; the wall budget keeps it
    # time-boxed. On violation the binary shrinks the scenario and
    # prints a fuzz_failures/<seed>.toml replay path — attach that to
    # the bug report.
    ELANIB_FUZZ_BUDGET_SECS="${ELANIB_FUZZ_BUDGET_SECS:-60}" \
        timeout "$wd" ./target/release/fuzz --scenarios 500 --seed 42 \
        || { echo "FAIL: scenario fuzz found an invariant violation (repro under fuzz_failures/)" >&2; return 1; }
}

# ---------------------------------------------------------------- driver

if [ -n "$ONLY_STAGE" ]; then
    RUN_LIST="$ONLY_STAGE"
elif [ "$MODE" = "quick" ]; then
    RUN_LIST="$QUICK_STAGES"
else
    RUN_LIST="$STAGES"
fi

declare -a RAN_NAMES RAN_WALLS RAN_STATUS
# Filled by stage_backend-matrix; emitted as a "backend_matrix" block
# in ci_summary.json when that stage ran.
declare -a BM_NAMES=() BM_WALLS=()
overall=0
total_start=$(date +%s%N)
for s in $RUN_LIST; do
    echo "== stage $s =="
    t0=$(date +%s%N)
    rc=0
    "stage_$s" || rc=$?
    t1=$(date +%s%N)
    wall_ms=$(( (t1 - t0) / 1000000 ))
    RAN_NAMES+=("$s")
    RAN_WALLS+=("$wall_ms")
    if [ "$rc" -eq 0 ]; then
        RAN_STATUS+=("ok")
        echo "== stage $s ok in ${wall_ms} ms =="
    else
        RAN_STATUS+=("FAIL")
        echo "== stage $s FAILED (rc=$rc) after ${wall_ms} ms ==" >&2
        overall=1
        break   # later stages depend on earlier ones; stop, summarize
    fi
done
total_end=$(date +%s%N)
total_ms=$(( (total_end - total_start) / 1000000 ))

echo
echo "== CI summary ($MODE) =="
printf '%-14s %10s  %s\n' "stage" "wall" "status"
for i in "${!RAN_NAMES[@]}"; do
    printf '%-14s %8s ms  %s\n' "${RAN_NAMES[$i]}" "${RAN_WALLS[$i]}" "${RAN_STATUS[$i]}"
done
printf '%-14s %8s ms  %s\n' "total" "$total_ms" "$([ "$overall" -eq 0 ] && echo ok || echo FAIL)"

{
    printf '{\n  "mode": "%s",\n  "ok": %s,\n  "total_ms": %s,\n  "stages": [\n' \
        "$MODE" "$([ "$overall" -eq 0 ] && echo true || echo false)" "$total_ms"
    for i in "${!RAN_NAMES[@]}"; do
        printf '    {"name": "%s", "wall_ms": %s, "ok": %s}%s\n' \
            "${RAN_NAMES[$i]}" "${RAN_WALLS[$i]}" \
            "$([ "${RAN_STATUS[$i]}" = ok ] && echo true || echo false)" \
            "$([ $((i + 1)) -lt ${#RAN_NAMES[@]} ] && echo ',')"
    done
    if [ "${#BM_NAMES[@]}" -gt 0 ]; then
        printf '  ],\n  "backend_matrix": [\n'
        for i in "${!BM_NAMES[@]}"; do
            printf '    {"backend": "%s", "wall_ms": %s}%s\n' \
                "${BM_NAMES[$i]}" "${BM_WALLS[$i]}" \
                "$([ $((i + 1)) -lt ${#BM_NAMES[@]} ] && echo ',')"
        done
    fi
    printf '  ]\n}\n'
} > ci_summary.json
echo "[stage summary written to ci_summary.json]"

if [ "$overall" -eq 0 ]; then
    echo "CI OK"
else
    echo "CI FAILED at stage ${RAN_NAMES[${#RAN_NAMES[@]}-1]}" >&2
fi
exit "$overall"
