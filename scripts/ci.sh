#!/usr/bin/env bash
# Local CI gate: everything a change must pass before it lands.
#
#   1. release build of the whole workspace
#   2. full test suite
#   3. clippy with warnings promoted to errors (the tree is kept
#      warning-free; don't let it regress)
#   4. exhibit-determinism smoke check (regen_all.sh --smoke diffs the
#      fast exhibit subset against the committed results/)
#   5. point-cache consistency smoke: regenerate one simulation-backed
#      exhibit twice against a scratch ELANIB_CACHE_DIR and assert the
#      second (warm) run is answered by the cache and produces a
#      byte-identical CSV
#   6. fault-matrix smoke: one simulation-backed exhibit under a
#      low-rate loss plan and under a link-outage plan (ELANIB_FAULTS)
#      must complete cleanly — recovery paths must not hang or crash
#   7. zero-fault identity: a rate-zero fault plan is filtered out at
#      fabric build, so a full regen under ELANIB_FAULTS="loss=0,..."
#      must reproduce every committed CSV byte-identically
#
# Every exhibit invocation runs under the ELANIB_REGEN_TIMEOUT watchdog
# (default 300 s) so a livelocked simulation fails CI instead of
# wedging it.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace --quiet

echo "== cargo test =="
cargo test -q

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== determinism smoke check =="
scripts/regen_all.sh --smoke

echo "== point-cache consistency smoke =="
wd="${ELANIB_REGEN_TIMEOUT:-300}"
cache_tmp="$(mktemp -d)"
trap 'rm -rf "$cache_tmp"' EXIT
mkdir -p "$cache_tmp/cold" "$cache_tmp/warm"
ELANIB_RESULTS_DIR="$cache_tmp/cold" ELANIB_CACHE_DIR="$cache_tmp/cache" \
    timeout "$wd" ./target/release/fig2 > /dev/null 2> "$cache_tmp/cold.log"
ELANIB_RESULTS_DIR="$cache_tmp/warm" ELANIB_CACHE_DIR="$cache_tmp/cache" \
    timeout "$wd" ./target/release/fig2 > /dev/null 2> "$cache_tmp/warm.log"
grep -q "cache 0 hits" "$cache_tmp/cold.log" \
    || { echo "FAIL: cold run unexpectedly hit the cache" >&2; cat "$cache_tmp/cold.log" >&2; exit 1; }
grep -q "100% hit rate" "$cache_tmp/warm.log" \
    || { echo "FAIL: warm run did not hit the cache" >&2; cat "$cache_tmp/warm.log" >&2; exit 1; }
cmp "$cache_tmp/cold/fig2_ljs.csv" "$cache_tmp/warm/fig2_ljs.csv" \
    || { echo "FAIL: warm-cache fig2 CSV differs from cold" >&2; exit 1; }
cmp "$cache_tmp/cold/fig2_ljs.csv" results/fig2_ljs.csv \
    || { echo "FAIL: cached fig2 CSV differs from committed results/" >&2; exit 1; }
echo "cache smoke OK: warm run fully cache-answered, CSVs byte-identical"

echo "== fault-matrix smoke =="
# The recovery machinery (IB retransmit/backoff, Elan link retry and
# reroute) must terminate under representative plans. Exit status is
# the assertion; the CSVs legitimately differ from results/ here.
mkdir -p "$cache_tmp/loss" "$cache_tmp/outage"
ELANIB_RESULTS_DIR="$cache_tmp/loss" ELANIB_FAULTS="loss=1e-4,seed=13" \
    timeout "$wd" ./target/release/fig2 > /dev/null \
    || { echo "FAIL: fig2 under a low-rate loss plan (status $?)" >&2; exit 1; }
ELANIB_RESULTS_DIR="$cache_tmp/outage" ELANIB_FAULTS="outage=link0@200us+2ms,seed=13" \
    timeout "$wd" ./target/release/fig2 > /dev/null \
    || { echo "FAIL: fig2 under a link-outage plan (status $?)" >&2; exit 1; }
echo "fault-matrix smoke OK: loss and outage plans both completed"

echo "== zero-fault identity check =="
# A rate-zero plan must be indistinguishable from no plan at all:
# every exhibit CSV byte-identical to the committed results/.
ELANIB_FAULTS="loss=0,seed=1" scripts/regen_all.sh

echo "CI OK"
