#!/usr/bin/env bash
# Local CI gate: everything a change must pass before it lands.
#
#   1. release build of the whole workspace
#   2. full test suite
#   3. clippy with warnings promoted to errors (the tree is kept
#      warning-free; don't let it regress)
#   4. exhibit-determinism smoke check (regen_all.sh --smoke diffs the
#      fast exhibit subset against the committed results/)
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace --quiet

echo "== cargo test =="
cargo test -q

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== determinism smoke check =="
scripts/regen_all.sh --smoke

echo "CI OK"
