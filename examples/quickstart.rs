//! Quickstart: measure ping-pong latency and bandwidth on both
//! simulated interconnects.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use elanib::microbench::pingpong;
use elanib::mpi::Network;

fn main() {
    println!("elanib quickstart — 2 nodes, 1 process per node\n");
    println!(
        "{:>9}  {:>22}  {:>22}",
        "bytes", "4X InfiniBand", "Quadrics Elan-4"
    );
    println!(
        "{:>9}  {:>11} {:>10}  {:>11} {:>10}",
        "", "latency us", "MB/s", "latency us", "MB/s"
    );
    for bytes in [0u64, 8, 1024, 8192, 65536, 1 << 20] {
        let ib = pingpong(Network::InfiniBand, bytes, 50);
        let el = pingpong(Network::Elan4, bytes, 50);
        println!(
            "{:>9}  {:>11.2} {:>10.1}  {:>11.2} {:>10.1}",
            bytes, ib.latency_us, ib.bandwidth_mb_s, el.latency_us, el.bandwidth_mb_s
        );
    }
    println!(
        "\nThe paper's headline (§4.1): Elan-4 latency is about half of\n\
         InfiniBand's, and at 8 KB the bandwidths are ~552 vs ~249 MB/s."
    );
}
