//! The Sweep3D fixed-size study (Figure 4) as an interactive demo:
//! grind time and efficiency across process counts on both networks,
//! with the cache-residency superlinearity called out.
//!
//! ```sh
//! cargo run --release --example sweep3d_wavefront [grid_size]
//! ```

use elanib::apps::sweep3d::{grind_time_ns, sweep_cube, sweep_study};
use elanib::mpi::Network;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let p = sweep_cube(n);
    let counts = [1usize, 4, 9, 16, 25];
    println!("Sweep3D {n}^3 fixed-size study (KBA wavefront, 8 octants)\n");
    println!(
        "{:>6}  {:>12} {:>8}  {:>12} {:>8}",
        "procs", "IB grind ns", "eff %", "Elan grind ns", "eff %"
    );
    let ib = sweep_study(Network::InfiniBand, p, &counts, 1);
    let el = sweep_study(Network::Elan4, p, &counts, 1);
    for (i, &procs) in counts.iter().enumerate() {
        println!(
            "{:>6}  {:>12.1} {:>8.1}  {:>12.1} {:>8.1}",
            procs,
            grind_time_ns(p, ib[i].time_s, procs),
            ib[i].efficiency_pct(),
            grind_time_ns(p, el[i].time_s, procs),
            el[i].efficiency_pct(),
        );
    }
    if n >= 120 {
        println!(
            "\nEfficiency above 100% at 4 processes is the paper's §4.2.2\n\
             cache effect: the unscaled problem starts fitting in the\n\
             512 KB L2 once divided."
        );
    } else {
        println!(
            "\nAt {n}^3 the per-process working set is cache-resident even\n\
             on one processor, so there is no superlinear bump — run the\n\
             default 150^3 to see the paper's §4.2.2 cache effect."
        );
    }
    println!(
        "The paper's anomalous 25-process InfiniBand jump is an input\n\
         artifact the authors disavowed (see Figure 5); the simulation\n\
         reproduces the trend instead."
    );
}
