//! Observability demo: run the same halo-exchange workload on both
//! networks and dump the run statistics — wire traffic, NIC
//! transactions, unexpected-message rates, registration-cache
//! behaviour. These counters are where the §3 architecture differences
//! become visible even before any timing is read.
//!
//! ```sh
//! cargo run --release --example network_stats
//! ```

use elanib::mpi::collectives::{allreduce, barrier, Op};
use elanib::mpi::tports::ElanWorld;
use elanib::mpi::verbs::IbWorld;
use elanib::mpi::{bytes_of_f64, irecv, isend, waitall, Communicator, Network, WorldStats};
use elanib::simcore::{Dur, Sim};

async fn workload<C: Communicator>(c: C) {
    let n = c.size();
    let me = c.rank();
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    for _step in 0..10 {
        // Fixed tag: steps are ordered by the non-overtaking guarantee,
        // and the stable tag means stable buffer identity (so the
        // registration cache can do its job after the first step).
        let rr = irecv(&c, Some(left), Some(7)).await;
        let sr = isend(&c, right, 7, bytes_of_f64(&[me as f64; 16]), 32 * 1024).await;
        c.compute(Dur::from_us(400), 0.3).await;
        waitall(&c, vec![rr, sr]).await;
        let _ = allreduce(&c, Op::Sum, &[1.0]).await;
    }
    barrier(&c).await;
}

fn main() {
    let nodes = 8;
    let ppn = 2;
    println!("ring halo workload: {nodes} nodes x {ppn} PPN, 10 steps of 32 KB + allreduce\n");
    let mut rows: Vec<(Network, WorldStats, f64)> = Vec::new();
    {
        let sim = Sim::new(61);
        let w = IbWorld::new(&sim, nodes, ppn);
        w.spawn_ranks("stats", workload);
        let t = sim.run().unwrap();
        rows.push((Network::InfiniBand, w.stats(), t.as_secs_f64() * 1e3));
    }
    {
        let sim = Sim::new(61);
        let w = ElanWorld::new(&sim, nodes, ppn);
        w.spawn_ranks("stats", workload);
        let t = sim.run().unwrap();
        rows.push((Network::Elan4, w.stats(), t.as_secs_f64() * 1e3));
    }
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "network", "time ms", "wire MB", "NIC msgs", "unexpected", "reg hits", "reg miss"
    );
    for (net, s, ms) in &rows {
        println!(
            "{:<18} {:>10.2} {:>12.2} {:>12} {:>10} {:>10} {:>10}",
            net.label(),
            ms,
            s.wire_bytes as f64 / 1e6,
            s.nic_messages,
            s.unexpected,
            s.reg_hits,
            s.reg_misses,
        );
    }
    println!(
        "\nReading the counters:\n\
         - InfiniBand registers every rendezvous buffer: misses on the\n\
           first step, hits once the pin-down cache is warm. Elan-4\n\
           shows zero registrations ever (NIC MMU, §3.3.2).\n\
         - Link-bytes differ because the two fabrics route differently\n\
           (the Elan 4-ary tree crosses more switch stages at this size).\n\
         - Unexpected counts reveal receivers lagging senders —\n\
           buffered by host software on IB, by the NIC on Elan."
    );
}
