//! Scaled-size molecular-dynamics study (the paper's LAMMPS membrane
//! experiment, Figure 3) on both networks at 1 and 2 processes per
//! node — the experiment whose 32-node result is the paper's headline.
//!
//! ```sh
//! cargo run --release --example md_scaling
//! ```

use elanib::apps::md::{md_study, membrane, MdProblem};
use elanib::mpi::Network;

fn main() {
    let problem = MdProblem {
        steps: 20,
        ..membrane()
    };
    let nodes = [1usize, 4, 16, 32];
    println!(
        "LAMMPS membrane proxy: {} atoms/process, scaled study\n",
        problem.atoms_per_rank
    );
    println!(
        "{:>6} {:>6}  {:>14} {:>8}",
        "nodes", "procs", "ms/step", "eff %"
    );
    for ppn in [1usize, 2] {
        for net in Network::BOTH {
            println!("--- {net}, {ppn} process(es) per node ---");
            for pt in md_study(net, problem, &nodes, ppn) {
                println!(
                    "{:>6} {:>6}  {:>14.3} {:>8.1}",
                    pt.nodes,
                    pt.procs,
                    pt.time_s * 1e3,
                    pt.efficiency_pct()
                );
            }
        }
    }
    println!(
        "\nPaper (§4.2.1): Elan-4 93%/91% at 32 nodes (1/2 PPN);\n\
         InfiniBand 84%/77% — 'a serious limitation in the scalability\n\
         of InfiniBand networks relative to Quadrics networks.'"
    );
}
