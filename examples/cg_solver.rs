//! Distributed conjugate gradient with real arithmetic: the simulated
//! cluster solves the same eigenvalue problem as a serial reference,
//! and the answers must match to 1e-10 on both networks — the
//! communication layer carries real data, not just timing.
//!
//! ```sh
//! cargo run --release --example cg_solver
//! ```

use elanib::apps::nascg::{cg_run, class_a_reduced, serial_cg, CgProblem, SparseSpd};
use elanib::mpi::Network;

fn main() {
    let p = CgProblem {
        n: 2048,
        outer: 5,
        inner: 20,
        ..class_a_reduced(2048)
    };
    println!(
        "CG eigenvalue estimation: n={}, {} outer x {} inner iterations, shift {}\n",
        p.n, p.outer, p.inner, p.shift
    );

    let a = SparseSpd::generate(p.n, p.nz_per_row, 0xC6);
    let (zeta_serial, resid) = serial_cg(&a, p.outer, p.inner, p.shift);
    println!("serial reference:   zeta = {zeta_serial:.12}   (residual {resid:.2e})");

    for net in Network::BOTH {
        for (nodes, ppn) in [(4usize, 1usize), (4, 2)] {
            let run = cg_run(net, p, nodes, ppn);
            let err = (run.zeta - zeta_serial).abs();
            println!(
                "{net:>16}, {:>2} ranks: zeta = {:.12}  |err| = {err:.1e}  \
                 simulated time {:.1} ms  ({:.0} MOps/s/proc)",
                nodes * ppn,
                run.zeta,
                run.time_s * 1e3,
                run.mops_per_process
            );
            assert!(err < 1e-10, "distributed result must match serial");
        }
    }
    println!("\nAll distributed runs reproduce the serial result exactly.");
}
