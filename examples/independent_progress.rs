//! The paper's §3.3.3 argument, as a runnable experiment: a rank posts
//! a large non-blocking send and then computes without calling MPI;
//! the receiver measures when its blocking receive completes.
//!
//! On Elan-4 the NIC answers the rendezvous autonomously — the
//! transfer finishes in wire time. On InfiniBand/MVAPICH the CTS sits
//! unprocessed in the sender's inbox until the sender re-enters the
//! MPI library, so the receive completes only after the compute phase.
//!
//! ```sh
//! cargo run --release --example independent_progress
//! ```

use std::cell::Cell;
use std::rc::Rc;

use elanib::mpi::tports::ElanWorld;
use elanib::mpi::verbs::IbWorld;
use elanib::mpi::{bytes_of_f64, irecv, isend, Communicator, Network};
use elanib::simcore::{Dur, Sim};

const MSG_BYTES: u64 = 2_000_000;
const COMPUTE_MS: u64 = 25;

fn run(network: Network) -> (f64, f64) {
    let sim = Sim::new(1);
    let recv_done_ms = Rc::new(Cell::new(0.0));
    let total_ms = Rc::new(Cell::new(0.0));

    macro_rules! ranks {
        ($world:expr) => {{
            let w = $world;
            for r in 0..2usize {
                let c = w.comm(r);
                let (rd, tt, s) = (recv_done_ms.clone(), total_ms.clone(), sim.clone());
                sim.spawn(format!("rank{r}"), async move {
                    if c.rank() == 0 {
                        let req = isend(&c, 1, 1, bytes_of_f64(&[1.0; 64]), MSG_BYTES).await;
                        // Compute phase: NO MPI calls in here.
                        c.compute(Dur::from_ms(COMPUTE_MS), 0.2).await;
                        c.wait(req).await;
                        tt.set(s.now().as_secs_f64() * 1e3);
                    } else {
                        let req = irecv(&c, Some(0), Some(1)).await;
                        c.wait(req).await;
                        rd.set(s.now().as_secs_f64() * 1e3);
                    }
                });
            }
        }};
    }
    match network {
        // RoCE rides the same verbs world as native IB.
        Network::InfiniBand | Network::RoceV2(_) => ranks!(IbWorld::new(&sim, 2, 1)),
        Network::Elan4 => ranks!(ElanWorld::new(&sim, 2, 1)),
    }
    sim.run().unwrap();
    (recv_done_ms.get(), total_ms.get())
}

fn main() {
    println!(
        "Sender: isend {} MB, compute {} ms with no MPI calls, then wait.\n",
        MSG_BYTES / 1_000_000,
        COMPUTE_MS
    );
    for net in Network::BOTH {
        let (recv_ms, total_ms) = run(net);
        println!("{net}:");
        println!("  receiver's recv completed at {recv_ms:>7.2} ms");
        println!("  sender finished everything at {total_ms:>6.2} ms");
        if recv_ms < COMPUTE_MS as f64 {
            println!("  -> transfer completed DURING the compute phase (independent progress)\n");
        } else {
            println!(
                "  -> transfer stalled until the sender re-entered MPI (no independent progress)\n"
            );
        }
    }
}
