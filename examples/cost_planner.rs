//! Cluster procurement planner built on the §5 cost model: price a
//! cluster of a given size under all three network strategies and
//! fold in the extrapolated scaling efficiency (Figure 8) to get
//! cost-per-delivered-performance.
//!
//! ```sh
//! cargo run --release --example cost_planner [nodes]
//! ```

use elanib::core::EfficiencyTrend;
use elanib::cost::{
    cost_per_performance, elan_network, ib96_network, ib_mixed_network, system_cost_per_node,
    IbPrices, QuadricsPrices, NODE_COST,
};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let q = QuadricsPrices::default();
    let ib = IbPrices::default();

    // Efficiency trends shaped like the Figure 3/8 membrane results.
    let elan_trend = EfficiencyTrend::fit(&[(1, 1.0), (8, 0.96), (32, 0.942)]);
    let ib_trend = EfficiencyTrend::fit(&[(1, 1.0), (8, 0.87), (32, 0.813)]);

    println!("Pricing a {nodes}-node cluster (nodes at ${NODE_COST}/each):\n");
    println!(
        "{:<28} {:>12} {:>12} {:>10} {:>14}",
        "option", "net $/node", "sys $/node", "eff @ n", "$/perf"
    );
    let rows = [
        ("Quadrics Elan-4", elan_network(&q, nodes), elan_trend),
        ("InfiniBand (96-port)", ib96_network(&ib, nodes), ib_trend),
        (
            "InfiniBand (24/288-port)",
            ib_mixed_network(&ib, nodes),
            ib_trend,
        ),
    ];
    let mut best = (f64::INFINITY, "");
    for (name, net, trend) in rows {
        let sys = system_cost_per_node(net);
        let eff = trend.at(nodes);
        let cp = cost_per_performance(sys, eff);
        if cp < best.0 {
            best = (cp, name);
        }
        println!(
            "{:<28} {:>12.0} {:>12.0} {:>9.1}% {:>14.0}",
            name,
            net.per_port,
            sys,
            eff * 100.0,
            cp
        );
    }
    println!(
        "\nBest cost-per-delivered-performance at {nodes} nodes: {}",
        best.1
    );
    println!(
        "(The paper's §5 conclusion: the technologies 'could be\n\
         cost-competitive at scale' — the Elan premium is offset by the\n\
         efficiency gap if the Figure 8 trends continue.)"
    );
}
