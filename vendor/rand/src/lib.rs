//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates-io mirror,
//! so the workspace vendors the tiny slice of `rand`'s API it actually
//! uses: a deterministic seedable generator ([`rngs::StdRng`]), the
//! [`SeedableRng`] constructor surface, and [`Rng::gen_range`] /
//! [`Rng::gen`] over primitive integer and float types.
//!
//! The generator is **not** the upstream ChaCha12-based `StdRng`; it is
//! a SplitMix64/xoshiro256++ pipeline. That is fine for this repository
//! because determinism (same seed ⇒ same stream, forever) is the only
//! property the simulator relies on — no committed exhibit draws from
//! the kernel RNG, and statistical quality far exceeds what jitter
//! modelling needs. The stream is stable: changing it would invalidate
//! committed results, so treat the constants below as frozen.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the same
    /// approach upstream documents for seeding from small entropy).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from their whole value range.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// A range a value can be uniformly sampled from (`gen_range`
/// argument), mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    /// Stream is frozen — committed results depend on it.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(s: [u64; 4]) -> StdRng {
            // All-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                StdRng {
                    s: [0x9E3779B97F4A7C15, 1, 2, 3],
                }
            } else {
                StdRng { s }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(b);
            }
            StdRng::from_state(s)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(1..100u64);
            assert!((1..100).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let x = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
