//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace
//! vendors the subset of proptest it uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple and collection
//! strategies, [`strategy::Just`], `prop_oneof!`, `any::<T>()`, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the exact generated
//!   input (every strategy value is `Debug`), which for this
//!   repository's test sizes is diagnosable directly.
//! * **Deterministic by default.** The generator is seeded from the
//!   test function's name, so failures reproduce without a
//!   `proptest-regressions` file. Existing regression files are
//!   ignored. Set `PROPTEST_CASES` to change the case count globally.

use std::fmt::Debug;

pub mod test_runner {
    /// Result of one generated test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: skip this input, draw another.
        Reject,
        /// `prop_assert*!` failed: the property does not hold.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(_msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject
        }
    }

    /// Runner configuration. Only `cases` is modelled.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Effective case count: the `PROPTEST_CASES` environment
        /// variable overrides the per-test configuration (handy for
        /// smoke runs).
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    /// Deterministic generator used by strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x5851F42D4C957F2D,
            }
        }

        /// Seed from a test name: same test ⇒ same input sequence on
        /// every run, so failures are reproducible without shrinking.
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xCBF29CE484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001B3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// 53-bit uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Drive `f` over `cases` generated inputs. Panics on the first
    /// failing case, printing the generated input.
    pub fn run_cases<S, F>(cfg: &ProptestConfig, name: &str, strat: &S, f: F)
    where
        S: crate::strategy::Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let cases = cfg.resolved_cases();
        let mut rng = TestRng::from_name(name);
        let mut ran = 0u32;
        let mut rejects = 0u32;
        while ran < cases {
            let value = strat.gen_value(&mut rng);
            let desc = format!("{value:?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(value)));
            match outcome {
                Ok(Ok(())) => ran += 1,
                Ok(Err(TestCaseError::Reject)) => {
                    rejects += 1;
                    let cap = cases.saturating_mul(50).max(5000);
                    assert!(
                        rejects <= cap,
                        "{name}: gave up after {rejects} prop_assume! rejects"
                    );
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!("{name}: property failed at case {ran}: {msg}\n    input: {desc}")
                }
                Err(payload) => {
                    eprintln!("{name}: panicked at case {ran}; input: {desc}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

pub mod strategy {
    use super::Debug;
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`. Unlike upstream there
    /// is no value tree / shrinking: `gen_value` draws directly.
    pub trait Strategy {
        type Value: Debug;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (**self).gen_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn gen_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.gen_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({}) rejected 10000 consecutive draws",
                self.whence
            )
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: Debug> Union<T> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    /// Box one `prop_oneof!` arm. A free generic function (rather than
    /// an inline `as Box<dyn ...>` cast in the macro) so integer
    /// literals in later arms unify with the union's value type instead
    /// of defaulting to `i32` at the cast site.
    pub fn union_arm<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn gen_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use super::Debug;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized + Debug {
        fn arb_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arb_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arb_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arb_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module namespace upstream exposes from its prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(l == r, "assertion failed: `{:?} == {:?}`", l, r);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?} == {:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(l != r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?} != {:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($s)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                &$cfg,
                stringify!($name),
                &($($strat,)+),
                |__proptest_values| {
                    let ($($pat,)+) = __proptest_values;
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 1u64..100, b in -5i64..=5, x in -1.5f64..2.5) {
            prop_assert!((1..100).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((-1.5..2.5).contains(&x));
        }

        #[test]
        fn vec_respects_size((n, v) in (2usize..=4, prop::collection::vec(0u32..10, 3..8))) {
            prop_assert!((2..=4).contains(&n));
            prop_assert!(v.len() >= 3 && v.len() < 8);
        }

        #[test]
        fn oneof_and_maps_compose(
            o in prop_oneof![Just(None), (0i64..4).prop_map(Some)],
        ) {
            if let Some(t) = o {
                prop_assert!((0..4).contains(&t));
            }
        }

        #[test]
        fn flat_map_sees_upstream((lo, x) in (1usize..10).prop_flat_map(|lo| (Just(lo), lo..20)) ) {
            prop_assert!(x >= lo && x < 20);
        }

        #[test]
        fn assume_rejects_do_not_fail(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (1u64..1000, crate::collection::vec(0u32..7, 1..5));
        let run = || {
            let mut rng = TestRng::from_name("deterministic_across_runs");
            (0..20)
                .map(|_| strat.gen_value(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
