//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! `Criterion::bench_function`, benchmark groups with `sample_size` and
//! `bench_with_input`, `criterion_group!` / `criterion_main!` — over a
//! plain wall-clock harness with no statistics machinery.
//!
//! Each benchmark runs one warm-up call and then `sample_size` timed
//! samples, printing min / mean / max per-call times. Knobs:
//!
//! * `ELANIB_BENCH_SMOKE=1` — one sample per bench (CI smoke runs);
//! * `ELANIB_BENCH_SAMPLES=N` — override the sample count globally;
//! * `ELANIB_BENCH_JSON=path` — append one JSON record per bench to
//!   the given file (same trajectory file the sweep engine writes).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn env_samples(default: usize) -> usize {
    if std::env::var("ELANIB_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return 1;
    }
    std::env::var("ELANIB_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Identifier for a parameterized benchmark: rendered `function/param`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, unmeasured.
        black_box(f());
        for _ in 0..self.per_sample {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {name:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap().as_secs_f64();
    let max = samples.iter().max().unwrap().as_secs_f64();
    let mean = samples.iter().map(|d| d.as_secs_f64()).sum::<f64>() / samples.len() as f64;
    let fmt = |s: f64| -> String {
        if s >= 1.0 {
            format!("{s:.3} s")
        } else if s >= 1e-3 {
            format!("{:.3} ms", s * 1e3)
        } else {
            format!("{:.3} us", s * 1e6)
        }
    };
    println!(
        "bench {:<50} mean {:>12}  min {:>12}  max {:>12}  ({} samples)",
        name,
        fmt(mean),
        fmt(min),
        fmt(max),
        samples.len()
    );
    crate::json::append_record(name, mean, min, max, samples.len());
}

mod json {
    /// Append `{"kind":"criterion",...}` to `$ELANIB_BENCH_JSON`, one
    /// JSON object per line (the file is a JSON-lines log).
    pub fn append_record(name: &str, mean_s: f64, min_s: f64, max_s: f64, samples: usize) {
        let Ok(path) = std::env::var("ELANIB_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let line = format!(
            "{{\"kind\":\"criterion\",\"label\":\"{}\",\"mean_s\":{:.9},\"min_s\":{:.9},\"max_s\":{:.9},\"samples\":{},\"unix_ts\":{}}}\n",
            name.replace('\\', "\\\\").replace('"', "\\\""),
            mean_s,
            min_s,
            max_s,
            samples,
            ts
        );
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

/// Top-level harness handle.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: env_samples(10),
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            per_sample: self.default_samples,
        };
        f(&mut b);
        report(name, &b.samples);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion semantics: number of samples collected per benchmark.
    /// Environment overrides (`ELANIB_BENCH_SMOKE`, `_SAMPLES`) win.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_samples(n.min(10));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            per_sample: self.samples,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion { default_samples: 3 };
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion { default_samples: 2 };
        let mut g = c.benchmark_group("g");
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
            b.iter(|| total += x);
        });
        g.finish();
        assert_eq!(total, 7 * 3); // warm-up + 2 samples
    }
}
