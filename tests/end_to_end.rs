//! End-to-end integration tests across the whole workspace, driven
//! through the umbrella crate's public API exactly as a downstream
//! user would.

use elanib::apps::md::{md_study, membrane, MdProblem};
use elanib::apps::nascg::{cg_run, class_a_reduced, serial_cg, CgProblem, SparseSpd};
use elanib::core::{exhibit, figure8_series, EfficiencyTrend, EXHIBITS};
use elanib::cost::{
    elan_network, ib96_network, ib_mixed_network, system_cost_per_node, IbPrices, QuadricsPrices,
};
use elanib::microbench::{beff, pingpong, streaming};
use elanib::mpi::Network;

/// The full pipeline of the paper in miniature: micro-benchmarks →
/// application study → extrapolation → cost-performance, producing the
/// paper's conclusion ("Quadrics scales better; InfiniBand costs
/// less; they could be cost-competitive at scale").
#[test]
fn whole_paper_pipeline() {
    // 1. Micro: Elan has lower latency, similar asymptotic bandwidth.
    let ib_small = pingpong(Network::InfiniBand, 8, 30);
    let el_small = pingpong(Network::Elan4, 8, 30);
    assert!(el_small.latency_us < ib_small.latency_us);
    let ib_big = pingpong(Network::InfiniBand, 1 << 20, 8);
    let el_big = pingpong(Network::Elan4, 1 << 20, 8);
    assert!((el_big.bandwidth_mb_s / ib_big.bandwidth_mb_s) < 1.25);

    // 2. Application: membrane scaling efficiency at 16 nodes.
    let p = MdProblem {
        steps: 8,
        ..membrane()
    };
    let nodes = [1usize, 4, 16];
    let el = md_study(Network::Elan4, p, &nodes, 1);
    let ib = md_study(Network::InfiniBand, p, &nodes, 1);
    assert!(el[2].efficiency > ib[2].efficiency);

    // 3. Extrapolation: fit both and project to 1024.
    let fit = |pts: &[elanib::apps::ScalingPoint]| {
        EfficiencyTrend::fit(
            &pts.iter()
                .map(|s| (s.procs, s.efficiency))
                .collect::<Vec<_>>(),
        )
    };
    let el_1024 = fit(&el).at(1024);
    let ib_1024 = fit(&ib).at(1024);
    assert!(el_1024 > ib_1024);

    // 4. Cost-performance at 1024 nodes.
    let q = QuadricsPrices::default();
    let ibp = IbPrices::default();
    let el_cp = system_cost_per_node(elan_network(&q, 1024)) / el_1024;
    let ib_cp = system_cost_per_node(ib_mixed_network(&ibp, 1024)) / ib_1024;
    // "could be cost-competitive at scale": within 2x either way.
    let ratio = el_cp / ib_cp;
    assert!(
        (0.5..2.0).contains(&ratio),
        "cost-performance ratio {ratio}"
    );
}

/// Determinism across the entire stack: the same experiment twice
/// gives bit-identical timing.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let a = pingpong(Network::InfiniBand, 4096, 12).latency_us;
        let b = beff(Network::Elan4, 3, 2, 1).beff_mb_s;
        let p = MdProblem {
            steps: 4,
            ..membrane()
        };
        let c = md_study(Network::Elan4, p, &[1, 3], 2)[1].time_s;
        (a, b, c)
    };
    assert_eq!(run(), run());
}

/// Real data survives the full simulated stack: distributed CG on a
/// 2-PPN InfiniBand cluster equals the serial solver exactly.
#[test]
fn numerics_survive_the_network() {
    let p = CgProblem {
        n: 512,
        outer: 3,
        inner: 12,
        ..class_a_reduced(512)
    };
    let a = SparseSpd::generate(p.n, p.nz_per_row, 0xC6);
    let (zeta, _) = serial_cg(&a, p.outer, p.inner, p.shift);
    let run = cg_run(Network::InfiniBand, p, 4, 2);
    assert!((run.zeta - zeta).abs() < 1e-10);
    // And the eigenvalue is not the degenerate shift+1.
    assert!((run.zeta - (p.shift + 1.0)).abs() > 1e-3);
}

/// The experiment inventory is complete and every exhibit names a
/// real binary target.
#[test]
fn exhibit_inventory_names_real_binaries() {
    let bins = [
        "table1",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "tables",
        "ablations",
        "faults",
        "roce",
    ];
    for e in EXHIBITS {
        assert!(
            bins.contains(&e.bin),
            "exhibit {} names unknown binary {}",
            e.id,
            e.bin
        );
    }
    assert!(exhibit("Figure 3").is_some());
}

/// Streaming beats ping-pong bandwidth on both networks at small
/// sizes, and the 96-port IB switch premium shows in the cost model —
/// spot checks that cross-crate wiring stays sane.
#[test]
fn cross_crate_sanity() {
    for net in Network::BOTH {
        let st = streaming(net, 512, 100);
        let pp = pingpong(net, 512, 40);
        assert!(st.bandwidth_mb_s > pp.bandwidth_mb_s);
    }
    let ib = IbPrices::default();
    assert!(
        ib96_network(&ib, 96).per_port > ib_mixed_network(&ib, 96).per_port,
        "96-port chassis carries a premium at equal size"
    );
    let s = figure8_series(&[(1, 1.0), (32, 0.9)], 1.0, 1024);
    assert_eq!(s.last().unwrap().0, 1024);
}
